package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.CellDone(100, time.Minute) // must not panic
	p.Finish()
	if s := p.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil Snapshot = %+v, want zero", s)
	}
}

func TestProgressAggregatesAndFinishes(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "test", 3, time.Hour) // throttle silences mid-run lines
	p.CellDone(100, time.Minute)
	p.CellDone(250, 2*time.Minute)

	s := p.Snapshot()
	if s.CellsDone != 2 || s.CellsTotal != 3 {
		t.Errorf("cells = %d/%d, want 2/3", s.CellsDone, s.CellsTotal)
	}
	if s.Events != 350 {
		t.Errorf("events = %d, want 350", s.Events)
	}
	if s.SimHorizon != 2*time.Minute {
		t.Errorf("sim horizon = %v, want the max (2m)", s.SimHorizon)
	}

	p.CellDone(50, time.Minute) // final cell prints despite the throttle
	p.Finish()
	p.Finish() // idempotent
	out := buf.String()
	if !strings.Contains(out, "cells 3/3") {
		t.Errorf("output missing final cell line:\n%s", out)
	}
	if got := strings.Count(out, "done:"); got != 1 {
		t.Errorf("Finish printed %d times, want 1:\n%s", got, out)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{CellsDone: 2, CellsTotal: 8, Events: 1000,
		EventsPerSec: 500, SimHorizon: time.Hour, ETA: 3 * time.Second}
	line := s.String()
	for _, want := range []string{"cells 2/8", "events 1000", "sim 1h0m0s", "eta 3s"} {
		if !strings.Contains(line, want) {
			t.Errorf("String() = %q, missing %q", line, want)
		}
	}
}

func TestServeExposesVarsAndPprof(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	NewProgress(io.Discard, "serve-test", 1, time.Hour).CellDone(7, time.Second)

	for _, path := range []string{"/debug/vars", "/debug/pprof/", "/metrics"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), "dikes_progress") {
			t.Errorf("/debug/vars missing the dikes_progress expvar")
		}
		if path == "/metrics" {
			if !strings.HasSuffix(string(body), "# EOF\n") {
				t.Errorf("/metrics missing # EOF terminator:\n%s", body)
			}
			if !strings.Contains(string(body), "dikes_progress_cells_done") {
				t.Errorf("/metrics missing live progress gauges:\n%s", body)
			}
			if got := resp.Header.Get("Content-Type"); got != ContentType {
				t.Errorf("/metrics Content-Type = %q", got)
			}
		}
	}
}

func TestServeShutdownReleasesListener(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port must be rebindable immediately after shutdown.
	addr2, shutdown2, err := Serve(addr, nil)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	defer shutdown2()
	if addr2 != addr {
		t.Errorf("rebound addr = %s, want %s", addr2, addr)
	}
}

// TestFinishClearsCurrent is the regression test for the stale
// dikes_progress expvar: after Finish, a scrape must see "no run in
// flight" (JSON null), not the finished run's snapshot.
func TestFinishClearsCurrent(t *testing.T) {
	p := NewProgress(io.Discard, "stale-test", 1, time.Hour)
	p.CellDone(7, time.Second)
	if got := current.snapshotAny(); got == nil {
		t.Fatal("expvar empty while the run is live")
	}
	p.Finish()
	if got := current.snapshotAny(); got != nil {
		t.Errorf("expvar still reports a snapshot after Finish: %+v", got)
	}
	if _, ok := currentSnapshot(); ok {
		t.Error("currentSnapshot still live after Finish")
	}

	// A newer run's ref must survive an older run's late Finish.
	old := NewProgress(io.Discard, "old", 1, time.Hour)
	newer := NewProgress(io.Discard, "new", 1, time.Hour)
	old.Finish()
	if got := current.snapshotAny(); got == nil {
		t.Error("stale Finish clobbered the live run's ref")
	}
	newer.Finish()
}

// TestProgressRace hammers CellDone/Snapshot/scrape concurrently; run
// with -race to verify the locking (satellite of the worker-pool wiring).
func TestProgressRace(t *testing.T) {
	p := NewProgress(io.Discard, "race", 64, time.Nanosecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				p.CellDone(10, time.Duration(i)*time.Second)
				_ = p.Snapshot()
				_ = current.snapshotAny()
				_, _ = currentSnapshot()
			}
		}()
	}
	wg.Wait()
	p.Finish()
}

func TestPeakRSSMB(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("VmHWM requires /proc")
	}
	if got := PeakRSSMB(); got <= 0 {
		t.Errorf("PeakRSSMB = %d, want > 0 on Linux", got)
	}
}
