package telemetry

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestWriteOpenMetricsGolden pins the full exposition for a registry
// exercising every family type, label escaping, and histogram bucket
// cumulativity.
func TestWriteOpenMetricsGolden(t *testing.T) {
	reg := metrics.NewRegistry()
	sc := reg.Scope("resolver")
	sc.Counter("cache_hits").Add(41)
	sc.Counter("cache_hits").Inc()
	sc.Gauge("inflight").Set(7)
	h := sc.Histogram("rtt_ms", []float64{10, 100})
	h.Observe(5)   // first bin
	h.Observe(50)  // second bin
	h.Observe(500) // overflow bin
	reg.Scope("auth-srv").Counter("weird name!").Inc()

	var b strings.Builder
	err := WriteOpenMetrics(&b, reg.Snapshot(), map[string]string{
		"exp":  `H "quoted" back\slash`,
		"line": "a\nb",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dikes_auth_srv_weird_name_ counter
dikes_auth_srv_weird_name__total{exp="H \"quoted\" back\\slash",line="a\nb"} 1
# TYPE dikes_resolver_cache_hits counter
dikes_resolver_cache_hits_total{exp="H \"quoted\" back\\slash",line="a\nb"} 42
# TYPE dikes_resolver_inflight gauge
dikes_resolver_inflight{exp="H \"quoted\" back\\slash",line="a\nb"} 7
# TYPE dikes_resolver_rtt_ms histogram
dikes_resolver_rtt_ms_bucket{exp="H \"quoted\" back\\slash",line="a\nb",le="10"} 1
dikes_resolver_rtt_ms_bucket{exp="H \"quoted\" back\\slash",line="a\nb",le="100"} 2
dikes_resolver_rtt_ms_bucket{exp="H \"quoted\" back\\slash",line="a\nb",le="+Inf"} 3
dikes_resolver_rtt_ms_sum{exp="H \"quoted\" back\\slash",line="a\nb"} 555
dikes_resolver_rtt_ms_count{exp="H \"quoted\" back\\slash",line="a\nb"} 3
# EOF
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteOpenMetricsNoLabels covers the unlabeled path and the
// cumulativity invariant le="+Inf" == _count on a merged snapshot.
func TestWriteOpenMetricsNoLabels(t *testing.T) {
	reg := metrics.NewRegistry()
	sc := reg.Scope("clock")
	sc.Counter("events_fired").Add(1000)
	var b strings.Builder
	if err := WriteOpenMetrics(&b, reg.Snapshot(), nil); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "dikes_clock_events_fired_total 1000\n") {
		t.Errorf("unlabeled counter wrong:\n%s", got)
	}
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Errorf("missing EOF:\n%s", got)
	}
}
