package telemetry

// Dependency-free OpenMetrics/Prometheus text exposition over
// metrics.Registry snapshots. The mapping is mechanical: scope "resolver"
// counter "cache_hits" becomes the counter family
// dikes_resolver_cache_hits_total, gauges keep their name, and histograms
// expand to the cumulative _bucket/_sum/_count triple the format
// requires. Output is fully sorted (scopes, names, label keys), so two
// scrapes of the same snapshot are byte-identical.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// ContentType is the OpenMetrics media type served by the /metrics
// handler.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders snap in OpenMetrics text format. Every family
// is prefixed dikes_<scope>_ and carries labels (sorted by key) on each
// sample. The writer error, if any, is returned from the final flush
// point; the format always ends with the mandated "# EOF".
func WriteOpenMetrics(w io.Writer, snap metrics.Snapshot, labels map[string]string) error {
	lbl := renderLabels(labels)
	var b strings.Builder
	for _, sc := range snap.Scopes {
		prefix := "dikes_" + sanitizeName(sc.Name) + "_"
		for _, name := range sortedKeys(sc.Counters) {
			fam := prefix + sanitizeName(name)
			fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
			fmt.Fprintf(&b, "%s_total%s %d\n", fam, lbl, sc.Counters[name])
		}
		for _, name := range sortedKeys(sc.Gauges) {
			fam := prefix + sanitizeName(name)
			fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
			fmt.Fprintf(&b, "%s%s %d\n", fam, lbl, sc.Gauges[name])
		}
		for _, name := range sortedKeys(sc.Histograms) {
			fam := prefix + sanitizeName(name)
			h := sc.Histograms[name]
			fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
			var cum int64
			for i, bound := range h.Bounds {
				if i < len(h.Counts) {
					cum += h.Counts[i]
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam,
					withLabel(labels, "le", formatFloat(bound)), cum)
			}
			// The overflow bin past the last bound closes the cumulative
			// series at le="+Inf", which the format requires to equal _count.
			fmt.Fprintf(&b, "%s_bucket%s %d\n", fam,
				withLabel(labels, "le", "+Inf"), h.Count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", fam, lbl, formatFloat(h.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", fam, lbl, h.Count)
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeProgressGauges appends the live Progress gauges (when a run is
// in flight) ahead of the trailing # EOF; the caller composes the two.
func writeProgressGauges(b *strings.Builder) {
	snap, ok := currentSnapshot()
	if !ok {
		return
	}
	g := func(name string, v float64) {
		fmt.Fprintf(b, "# TYPE dikes_progress_%s gauge\n", name)
		fmt.Fprintf(b, "dikes_progress_%s %s\n", name, formatFloat(v))
	}
	g("cells_done", float64(snap.CellsDone))
	g("cells_total", float64(snap.CellsTotal))
	g("events", float64(snap.Events))
	g("events_per_second", snap.EventsPerSec)
	g("sim_horizon_seconds", snap.SimHorizon.Seconds())
	g("peak_rss_mb", float64(snap.PeakRSSMB))
	g("elapsed_seconds", snap.Elapsed.Seconds())
	g("eta_seconds", snap.ETA.Seconds())
}

// Handler serves src's snapshot (plus live Progress gauges, when a run
// is in flight) as an OpenMetrics /metrics endpoint. src may be nil for
// a progress-only endpoint.
func Handler(src func() metrics.Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var snap metrics.Snapshot
		if src != nil {
			snap = src()
		}
		// Registry families first, then progress gauges, then the one
		// trailing EOF — WriteOpenMetrics owns an EOF of its own, so the
		// composition strips it and re-appends.
		var body, tmp strings.Builder
		if err := WriteOpenMetrics(&tmp, snap, nil); err == nil {
			body.WriteString(strings.TrimSuffix(tmp.String(), "# EOF\n"))
		}
		writeProgressGauges(&body)
		body.WriteString("# EOF\n")
		w.Header().Set("Content-Type", ContentType)
		io.WriteString(w, body.String())
	})
}

// sanitizeName maps an arbitrary scope/metric name into the exposition
// charset [a-zA-Z0-9_:]; every other byte becomes '_'.
func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue applies the exposition's label escaping: backslash,
// double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// renderLabels renders a label set as {k="v",...} with keys sorted, or
// "" when empty.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelBody(labels) + "}"
}

// withLabel renders labels plus one extra pair (the histogram le).
func withLabel(labels map[string]string, k, v string) string {
	body := labelBody(labels)
	if body != "" {
		body += ","
	}
	return "{" + body + k + `="` + escapeLabelValue(v) + `"}`
}

func labelBody(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = sanitizeName(k) + `="` + escapeLabelValue(labels[k]) + `"`
	}
	return strings.Join(parts, ",")
}

// formatFloat renders a float the way the exposition wants: integral
// values without a fraction, everything else in shortest form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
