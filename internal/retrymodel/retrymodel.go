// Package retrymodel reproduces the paper's §6.2 / Appendix E software
// study: how many queries BIND-like and Unbound-like recursive resolvers
// send to each zone level (root, .net, cachetest.net) when resolving
// AAAA sub.cachetest.net with the target's authoritatives up versus
// completely unreachable (Figure 16).
//
// Each trial runs a cold-cache resolver against a fresh simulated
// hierarchy and counts the queries arriving at each level's servers,
// mirroring the paper's 100-trial packet captures.
package retrymodel

import (
	"time"

	"repro/internal/authoritative"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/zone"
)

// Zone levels of the cachetest.net hierarchy.
const (
	LevelRoot   = "root"
	LevelNet    = "net"
	LevelTarget = "cachetest.net"
)

// Profile is a modeled resolver implementation.
type Profile struct {
	Name string
	// Harvest mirrors Unbound's fetching of the (missing) AAAA records of
	// a zone's nameservers, the source of its extra queries in the
	// paper's Figure 16.
	Harvest recursive.HarvestMode
	// MaxAttempts is the per-fetch retry budget; both daemons retry 6-7
	// times per name when servers are dead (§6.2).
	MaxAttempts int
	// WorkBudget caps the total upstream queries of one resolution.
	WorkBudget int
}

// BINDLike models BIND 9.10-style behavior: no NS-address harvesting,
// ~4x query increase during failure.
func BINDLike() Profile {
	return Profile{Name: "bind", Harvest: recursive.HarvestNone, MaxAttempts: 7, WorkBudget: 16}
}

// UnboundLike models Unbound 1.5-style behavior: chases the nonexistent
// AAAA records of the nameservers it learns, producing both its higher
// baseline (5-6 queries) and its much larger failure amplification.
func UnboundLike() Profile {
	return Profile{Name: "unbound", Harvest: recursive.HarvestAAAA, MaxAttempts: 7, WorkBudget: 48}
}

// Counts is the per-level query tally of one trial or an average.
type Counts struct {
	Root   float64
	Net    float64
	Target float64
}

// Total sums all levels.
func (c Counts) Total() float64 { return c.Root + c.Net + c.Target }

// Result summarizes a batch of trials.
type Result struct {
	Profile Profile
	Down    bool
	Trials  int
	Mean    Counts
	// Answered counts trials that got a positive answer.
	Answered int
}

// Run executes trials cold-cache resolutions and averages the per-level
// query counts. down makes the target zone's authoritatives drop all
// queries.
func Run(profile Profile, down bool, trials int, seed int64) Result {
	res := Result{Profile: profile, Down: down, Trials: trials}
	for i := 0; i < trials; i++ {
		counts, ok := runTrial(profile, down, seed+int64(i))
		res.Mean.Root += counts.Root
		res.Mean.Net += counts.Net
		res.Mean.Target += counts.Target
		if ok {
			res.Answered++
		}
	}
	if trials > 0 {
		res.Mean.Root /= float64(trials)
		res.Mean.Net /= float64(trials)
		res.Mean.Target /= float64(trials)
	}
	return res
}

// Hierarchy addresses.
const (
	rootAddr = "198.41.0.4"
	netAddr  = "192.5.6.30"
	ns1Addr  = "203.0.113.1"
	ns2Addr  = "203.0.113.2"
)

func runTrial(profile Profile, down bool, seed int64) (Counts, bool) {
	clk := clock.NewVirtual(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	net := netsim.New(clk, seed)

	rootZone := zone.New(".")
	rootZone.MustAdd(dnswire.RR{Name: ".", TTL: 518400, Data: dnswire.SOA{
		MName: "a.root-servers.net.", RName: "nstld.verisign-grs.com.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400}})
	rootZone.MustAdd(dnswire.RR{Name: ".", TTL: 518400, Data: dnswire.NS{Host: "a.root-servers.net."}})
	rootZone.MustAdd(dnswire.RR{Name: "a.root-servers.net.", TTL: 518400,
		Data: dnswire.A{Addr: dnswire.MustAddr(rootAddr)}})
	rootZone.MustAdd(dnswire.RR{Name: "net.", TTL: 172800, Data: dnswire.NS{Host: "a.gtld-servers.net."}})
	rootZone.MustAdd(dnswire.RR{Name: "a.gtld-servers.net.", TTL: 172800,
		Data: dnswire.A{Addr: dnswire.MustAddr(netAddr)}})

	netZone := zone.New("net.")
	netZone.MustAdd(dnswire.RR{Name: "net.", TTL: 86400, Data: dnswire.SOA{
		MName: "a.gtld-servers.net.", RName: "nstld.verisign-grs.com.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 3600}})
	netZone.MustAdd(dnswire.RR{Name: "net.", TTL: 86400, Data: dnswire.NS{Host: "a.gtld-servers.net."}})
	netZone.MustAdd(dnswire.RR{Name: "a.gtld-servers.net.", TTL: 86400,
		Data: dnswire.A{Addr: dnswire.MustAddr(netAddr)}})
	netZone.MustAdd(dnswire.RR{Name: "cachetest.net.", TTL: 172800, Data: dnswire.NS{Host: "ns1.cachetest.net."}})
	netZone.MustAdd(dnswire.RR{Name: "cachetest.net.", TTL: 172800, Data: dnswire.NS{Host: "ns2.cachetest.net."}})
	netZone.MustAdd(dnswire.RR{Name: "ns1.cachetest.net.", TTL: 172800,
		Data: dnswire.A{Addr: dnswire.MustAddr(ns1Addr)}})
	netZone.MustAdd(dnswire.RR{Name: "ns2.cachetest.net.", TTL: 172800,
		Data: dnswire.A{Addr: dnswire.MustAddr(ns2Addr)}})

	targetZone := zone.New("cachetest.net.")
	targetZone.MustAdd(dnswire.RR{Name: "cachetest.net.", TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.cachetest.net.", RName: "h.cachetest.net.",
		Serial: 1, Refresh: 7200, Retry: 3600, Expire: 864000, Minimum: 60}})
	targetZone.MustAdd(dnswire.RR{Name: "cachetest.net.", TTL: 3600, Data: dnswire.NS{Host: "ns1.cachetest.net."}})
	targetZone.MustAdd(dnswire.RR{Name: "cachetest.net.", TTL: 3600, Data: dnswire.NS{Host: "ns2.cachetest.net."}})
	targetZone.MustAdd(dnswire.RR{Name: "ns1.cachetest.net.", TTL: 3600,
		Data: dnswire.A{Addr: dnswire.MustAddr(ns1Addr)}})
	targetZone.MustAdd(dnswire.RR{Name: "ns2.cachetest.net.", TTL: 3600,
		Data: dnswire.A{Addr: dnswire.MustAddr(ns2Addr)}})
	targetZone.MustAdd(dnswire.RR{Name: "sub.cachetest.net.", TTL: 3600,
		Data: dnswire.AAAA{Addr: dnswire.MustAddr("2001:db8::5")}})

	authoritative.New(rootZone).Attach(net, rootAddr)
	authoritative.New(netZone).Attach(net, netAddr)
	authoritative.New(targetZone).Attach(net, ns1Addr)
	authoritative.New(targetZone).Attach(net, ns2Addr)

	var counts Counts
	net.AddTap(func(ev netsim.Event) {
		switch ev.Dst {
		case rootAddr:
			counts.Root++
		case netAddr:
			counts.Net++
		case ns1Addr, ns2Addr:
			counts.Target++
		}
	})

	if down {
		net.SetInboundLoss(ns1Addr, 1)
		net.SetInboundLoss(ns2Addr, 1)
	}

	r := recursive.NewResolver(clk, recursive.Config{
		RootHints:     []recursive.ServerHint{{Name: "a.root-servers.net.", Addr: rootAddr}},
		Harvest:       profile.Harvest,
		MaxAttempts:   profile.MaxAttempts,
		WorkBudget:    profile.WorkBudget,
		ClientTimeout: 30 * time.Second,
		Seed:          seed,
	})
	r.Attach(net, "10.0.0.53")

	answered := false
	r.Resolve("sub.cachetest.net.", dnswire.TypeAAAA, 0, func(res recursive.Result) {
		answered = !res.ServFail && len(res.Answers) > 0
	})
	clk.RunFor(2 * time.Minute)
	return counts, answered
}
