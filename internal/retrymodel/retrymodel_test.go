package retrymodel

import "testing"

func TestBINDLikeNormalOperation(t *testing.T) {
	res := Run(BINDLike(), false, 20, 1)
	if res.Answered != 20 {
		t.Fatalf("answered %d/20", res.Answered)
	}
	// The paper: BIND resolves with 3 queries (1 root, 1 net, 1 target).
	if res.Mean.Root != 1 || res.Mean.Net != 1 {
		t.Errorf("root/net queries = %.1f/%.1f, want 1/1", res.Mean.Root, res.Mean.Net)
	}
	if res.Mean.Target < 1 || res.Mean.Target > 2 {
		t.Errorf("target queries = %.1f, want ~1", res.Mean.Target)
	}
	if res.Mean.Total() > 4 {
		t.Errorf("total = %.1f, want ~3", res.Mean.Total())
	}
}

func TestUnboundLikeNormalOperation(t *testing.T) {
	res := Run(UnboundLike(), false, 20, 1)
	if res.Answered != 20 {
		t.Fatalf("answered %d/20", res.Answered)
	}
	// The paper: Unbound sends ~5-8 queries (target + NS/A/AAAA
	// harvesting).
	if res.Mean.Total() < 4 || res.Mean.Total() > 10 {
		t.Errorf("total = %.1f, want 5-8", res.Mean.Total())
	}
	bind := Run(BINDLike(), false, 20, 1)
	if res.Mean.Total() <= bind.Mean.Total() {
		t.Errorf("unbound (%.1f) should send more than bind (%.1f) normally",
			res.Mean.Total(), bind.Mean.Total())
	}
}

func TestFailureAmplification(t *testing.T) {
	bindUp := Run(BINDLike(), false, 20, 1)
	bindDown := Run(BINDLike(), true, 20, 1)
	if bindDown.Answered != 0 {
		t.Fatalf("answered %d with servers dead", bindDown.Answered)
	}
	// The paper: BIND 3 -> 12 (4x); allow 2.5-6x.
	mult := bindDown.Mean.Total() / bindUp.Mean.Total()
	if mult < 2 || mult > 8 {
		t.Errorf("bind amplification = %.1fx, want ~4x", mult)
	}

	unboundUp := Run(UnboundLike(), false, 20, 1)
	unboundDown := Run(UnboundLike(), true, 20, 1)
	umult := unboundDown.Mean.Total() / unboundUp.Mean.Total()
	if umult < 2 {
		t.Errorf("unbound amplification = %.1fx, want larger", umult)
	}
	// Unbound's absolute downtime traffic exceeds BIND's (46 vs 12 in
	// the paper).
	if unboundDown.Mean.Total() <= bindDown.Mean.Total() {
		t.Errorf("unbound down (%.1f) should exceed bind down (%.1f)",
			unboundDown.Mean.Total(), bindDown.Mean.Total())
	}
	// Retries hit the target zone, not the (healthy) parents: target
	// queries dominate the increase.
	if bindDown.Mean.Target <= bindUp.Mean.Target*2 {
		t.Errorf("bind target queries %.1f -> %.1f, want clear growth",
			bindUp.Mean.Target, bindDown.Mean.Target)
	}
}

func TestDeterministicTrials(t *testing.T) {
	a := Run(UnboundLike(), true, 5, 9)
	b := Run(UnboundLike(), true, 5, 9)
	if a.Mean != b.Mean {
		t.Errorf("same seed differs: %+v vs %+v", a.Mean, b.Mean)
	}
}
