package dnswire

// EDNS0 (RFC 6891) helpers. The OPT pseudo-record reuses the RR fields:
// Class carries the requester's UDP payload size and the TTL carries the
// extended RCODE and flags, of which bit 15 is DO ("DNSSEC OK").

// ednsDOBit is the DO flag in the OPT TTL field.
const ednsDOBit = 1 << 15

// ClassicUDPPayload is the DNS-over-UDP response-size limit without
// EDNS0 (RFC 1035 §4.2.1).
const ClassicUDPPayload = 512

// AddEDNS appends an OPT record advertising udpSize, with the DO bit set
// when do is true. Any existing OPT is replaced.
func (m *Message) AddEDNS(udpSize uint16, do bool) {
	var ttl uint32
	if do {
		ttl = ednsDOBit
	}
	opt := RR{Name: ".", Class: Class(udpSize), TTL: ttl, Data: OPT{}}
	for i, rr := range m.Additionals {
		if rr.Type() == TypeOPT {
			m.Additionals[i] = opt
			return
		}
	}
	m.Additionals = append(m.Additionals, opt)
}

// EDNS returns the message's OPT parameters: the advertised UDP size and
// the DO bit. ok is false when no OPT record is present.
func (m *Message) EDNS() (udpSize uint16, do bool, ok bool) {
	for _, rr := range m.Additionals {
		if rr.Type() == TypeOPT {
			return uint16(rr.Class), rr.TTL&ednsDOBit != 0, true
		}
	}
	return 0, false, false
}

// UDPPayloadLimit returns the UDP response-size budget this message's
// sender advertised: ClassicUDPPayload octets unless an OPT record
// raises it (RFC 6891 §6.2.3: values below 512 are treated as 512).
func (m *Message) UDPPayloadLimit() int {
	if size, _, ok := m.EDNS(); ok && int(size) > ClassicUDPPayload {
		return int(size)
	}
	return ClassicUDPPayload
}
