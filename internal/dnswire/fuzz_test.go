package dnswire

import (
	"bytes"
	"fmt"
	"testing"
)

// fuzzSeeds are hand-picked wire messages covering the interesting decode
// paths: a plain query, a response with every rdata family, and an EDNS
// query. The committed corpus under testdata/fuzz adds the adversarial
// inputs (truncated headers, pointer loops, dangling pointers).
func fuzzSeeds(f *testing.F) {
	q := NewQuery(0x1234, "www.example.nl.", TypeAAAA)
	wire, err := q.Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)

	r := NewResponse(q)
	r.Answers = append(r.Answers,
		RR{Name: "www.example.nl.", Class: ClassIN, TTL: 3600,
			Data: CNAME{Target: "host.example.nl."}},
		RR{Name: "host.example.nl.", Class: ClassIN, TTL: 300,
			Data: AAAA{Addr: MustAddr("2001:db8::1")}})
	r.Authorities = append(r.Authorities,
		RR{Name: "example.nl.", Class: ClassIN, TTL: 86400,
			Data: SOA{MName: "ns1.example.nl.", RName: "host.example.nl.",
				Serial: 1, Refresh: 7200, Retry: 3600, Expire: 864000, Minimum: 60}},
		RR{Name: "example.nl.", Class: ClassIN, TTL: 86400,
			Data: NSEC{NextName: "www.example.nl.", Types: []Type{TypeA, TypeNS, TypeNSEC}}})
	r.Additionals = append(r.Additionals,
		RR{Name: "mail.example.nl.", Class: ClassIN, TTL: 300,
			Data: TXT{Strings: []string{"v=spf1 -all"}}},
		RR{Name: "example.nl.", Class: ClassIN, TTL: 300,
			Data: MX{Pref: 10, Host: "mail.example.nl."}})
	if wire, err = r.Pack(); err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	if wire, err = r.PackUncompressed(); err != nil {
		f.Fatal(err)
	}
	f.Add(wire)

	e := NewQuery(7, "example.nl.", TypeDNSKEY)
	e.AddEDNS(1232, true)
	if wire, err = e.Pack(); err != nil {
		f.Fatal(err)
	}
	f.Add(wire)

	// NXNS-shaped referral: a wide glueless NS set fanning one query out
	// to many fabricated out-of-zone targets, plus out-of-bailiwick glue.
	// Name compression works hard here (shared "nx.victim.nl." suffix),
	// so this seed steers the fuzzer at the pointer-chain decode paths
	// the adversary scenarios exercise.
	nx := NewResponse(NewQuery(0x0bad, "1.w20.evil.nl.", TypeAAAA))
	for j := 0; j < 20; j++ {
		nx.Authorities = append(nx.Authorities,
			RR{Name: "1.w20.evil.nl.", Class: ClassIN, TTL: 600,
				Data: NS{Host: fmt.Sprintf("ns%d.1.nx.victim.nl.", j+1)}})
	}
	nx.Additionals = append(nx.Additionals,
		RR{Name: "ns1.attacker.test.", Class: ClassIN, TTL: 600,
			Data: A{Addr: MustAddr("203.0.113.99")}})
	if wire, err = nx.Pack(); err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	if wire, err = nx.PackUncompressed(); err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
}

// FuzzUnpack asserts the decoder's liberal/conservative contract: Unpack
// never panics on arbitrary bytes, and any message it accepts either
// re-Packs into parseable wire or is refused by Pack (names with empty
// labels, oversized sections) — Pack must never emit corrupt messages.
func FuzzUnpack(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		wire, err := m.Pack()
		if err != nil {
			return
		}
		if _, err := Unpack(wire); err != nil {
			t.Fatalf("repacked message does not parse: %v\nmessage: %+v", err, m)
		}
	})
}

// FuzzPackUnpackRoundTrip asserts that decode→encode→decode is a semantic
// fixpoint: the re-decoded message equals the first decode, and a second
// encode is byte-identical (Pack is deterministic). Equality is semantic
// (RData.Equal), not structural, because the NSEC type bitmap is a set.
func FuzzPackUnpackRoundTrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err := Unpack(data)
		if err != nil {
			return
		}
		wire1, err := m1.Pack()
		if err != nil {
			return
		}
		m2, err := Unpack(wire1)
		if err != nil {
			t.Fatalf("repacked message does not parse: %v", err)
		}
		if !messagesEquivalent(m1, m2) {
			t.Fatalf("roundtrip changed the message\nbefore: %+v\nafter:  %+v", m1, m2)
		}
		wire2, err := m2.Pack()
		if err != nil {
			t.Fatalf("second Pack failed: %v", err)
		}
		if !bytes.Equal(wire1, wire2) {
			t.Fatalf("Pack is not deterministic\nfirst:  %x\nsecond: %x", wire1, wire2)
		}
	})
}

func messagesEquivalent(a, b *Message) bool {
	if a.ID != b.ID || a.flags() != b.flags() {
		return false
	}
	if len(a.Questions) != len(b.Questions) {
		return false
	}
	for i, q := range a.Questions {
		o := b.Questions[i]
		if q.Name != o.Name || q.Type != o.Type || q.Class != o.Class {
			return false
		}
	}
	secs := [][2][]RR{
		{a.Answers, b.Answers},
		{a.Authorities, b.Authorities},
		{a.Additionals, b.Additionals},
	}
	for _, s := range secs {
		if len(s[0]) != len(s[1]) {
			return false
		}
		for i, rr := range s[0] {
			o := s[1][i]
			if rr.Name != o.Name || rr.Class != o.Class || rr.TTL != o.TTL {
				return false
			}
			if !rr.Data.Equal(o.Data) {
				return false
			}
		}
	}
	return true
}
