package dnswire

import (
	"fmt"
	"sort"
	"strings"
)

// TypeNSEC is the authenticated-denial record (RFC 4034 §4).
const TypeNSEC Type = 47

func init() {
	typeNames[TypeNSEC] = "NSEC"
}

// NSEC links an owner name to the next name in the zone's canonical order
// and lists the types present at the owner, proving what does not exist.
type NSEC struct {
	NextName string
	Types    []Type
}

// RType implements RData.
func (NSEC) RType() Type { return TypeNSEC }

func (n NSEC) String() string {
	parts := []string{n.NextName}
	for _, t := range n.Types {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " ")
}

// Equal implements RData. The type bitmap is a set: order-insensitive.
func (n NSEC) Equal(other RData) bool {
	o, ok := other.(NSEC)
	if !ok || CanonicalName(n.NextName) != CanonicalName(o.NextName) ||
		len(n.Types) != len(o.Types) {
		return false
	}
	a := append([]Type(nil), n.Types...)
	b := append([]Type(nil), o.Types...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (n NSEC) encode(b *builder) {
	b.name(n.NextName, false) // never compressed (RFC 3597 / 4034)
	// Type bitmap: window blocks of up to 32 octets.
	types := append([]Type(nil), n.Types...)
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	i := 0
	for i < len(types) {
		window := byte(types[i] >> 8)
		var bitmap [32]byte
		maxOctet := 0
		for ; i < len(types) && byte(types[i]>>8) == window; i++ {
			low := byte(types[i])
			octet := int(low / 8)
			bitmap[octet] |= 0x80 >> (low % 8)
			if octet+1 > maxOctet {
				maxOctet = octet + 1
			}
		}
		b.byte(window)
		b.byte(byte(maxOctet))
		b.bytes(bitmap[:maxOctet])
	}
}

// decodeNSEC parses an NSEC RDATA.
func (p *parser) decodeNSEC(end int) (RData, error) {
	var n NSEC
	var err error
	if n.NextName, err = p.name(); err != nil {
		return nil, err
	}
	lastWindow := -1
	for p.off < end {
		window, err := p.byte()
		if err != nil {
			return nil, err
		}
		// RFC 4034 §4.1.2: window blocks in increasing order, no repeats.
		// Accepting repeats would let duplicate type bits survive to the
		// re-encoder, which canonicalizes the bitmap and silently changes
		// the record.
		if int(window) <= lastWindow {
			return nil, fmt.Errorf("dnswire: NSEC bitmap windows not ascending")
		}
		lastWindow = int(window)
		length, err := p.byte()
		if err != nil {
			return nil, err
		}
		if length == 0 || length > 32 {
			return nil, fmt.Errorf("dnswire: bad NSEC bitmap length %d", length)
		}
		octets, err := p.bytes(int(length))
		if err != nil {
			return nil, err
		}
		for oi, octet := range octets {
			for bit := 0; bit < 8; bit++ {
				if octet&(0x80>>bit) != 0 {
					n.Types = append(n.Types,
						Type(uint16(window)<<8|uint16(oi*8+bit)))
				}
			}
		}
	}
	return n, nil
}

// Covers reports whether this NSEC record (owned by owner) proves the
// nonexistence of name: owner < name < NextName in canonical order, with
// the last NSEC in the chain wrapping to the apex.
func (n NSEC) Covers(owner, name string) bool {
	owner = CanonicalName(owner)
	name = CanonicalName(name)
	next := CanonicalName(n.NextName)
	if CompareCanonical(owner, name) >= 0 {
		return false
	}
	if CompareCanonical(owner, next) < 0 {
		return CompareCanonical(name, next) < 0
	}
	// Wrap-around: owner is the canonically last name.
	return true
}

// CompareCanonical orders names per RFC 4034 §6.1: label by label from
// the root, case-insensitively, bytewise.
func CompareCanonical(a, b string) int {
	la, lb := SplitLabels(a), SplitLabels(b)
	for i := 1; ; i++ {
		if i > len(la) && i > len(lb) {
			return 0
		}
		if i > len(la) {
			return -1
		}
		if i > len(lb) {
			return 1
		}
		ca, cb := la[len(la)-i], lb[len(lb)-i]
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
	}
}
