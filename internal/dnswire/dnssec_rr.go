package dnswire

import (
	"bytes"
	"encoding/base64"
	"fmt"
)

// DNSSEC record types (RFC 4034).
const (
	TypeRRSIG  Type = 46
	TypeDNSKEY Type = 48
)

func init() {
	typeNames[TypeRRSIG] = "RRSIG"
	typeNames[TypeDNSKEY] = "DNSKEY"
}

// DNSKEY is a zone's public key (RFC 4034 §2).
type DNSKEY struct {
	Flags     uint16 // 256 = ZSK, 257 = KSK (SEP bit)
	Protocol  uint8  // always 3
	Algorithm uint8  // 15 = Ed25519 (RFC 8080)
	PublicKey []byte
}

// RType implements RData.
func (DNSKEY) RType() Type { return TypeDNSKEY }

func (k DNSKEY) String() string {
	return fmt.Sprintf("%d %d %d %s", k.Flags, k.Protocol, k.Algorithm,
		base64.StdEncoding.EncodeToString(k.PublicKey))
}

// Equal implements RData.
func (k DNSKEY) Equal(other RData) bool {
	o, ok := other.(DNSKEY)
	return ok && k.Flags == o.Flags && k.Protocol == o.Protocol &&
		k.Algorithm == o.Algorithm && bytes.Equal(k.PublicKey, o.PublicKey)
}

func (k DNSKEY) encode(b *builder) {
	b.uint16(k.Flags)
	b.byte(k.Protocol)
	b.byte(k.Algorithm)
	b.bytes(k.PublicKey)
}

// RDataWire returns the record's RDATA in wire form (used for key-tag and
// DS digest computation).
func (k DNSKEY) RDataWire() []byte {
	b := newBuilder(false)
	k.encode(b)
	return b.buf
}

// RRSIG is a signature over one RRset (RFC 4034 §3).
type RRSIG struct {
	TypeCovered Type
	Algorithm   uint8
	Labels      uint8
	OriginalTTL uint32
	Expiration  uint32 // seconds since the Unix epoch
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

// RType implements RData.
func (RRSIG) RType() Type { return TypeRRSIG }

func (r RRSIG) String() string {
	return fmt.Sprintf("%s %d %d %d %d %d %d %s %s",
		r.TypeCovered, r.Algorithm, r.Labels, r.OriginalTTL,
		r.Expiration, r.Inception, r.KeyTag, r.SignerName,
		base64.StdEncoding.EncodeToString(r.Signature))
}

// Equal implements RData.
func (r RRSIG) Equal(other RData) bool {
	o, ok := other.(RRSIG)
	return ok && r.TypeCovered == o.TypeCovered && r.Algorithm == o.Algorithm &&
		r.Labels == o.Labels && r.OriginalTTL == o.OriginalTTL &&
		r.Expiration == o.Expiration && r.Inception == o.Inception &&
		r.KeyTag == o.KeyTag &&
		CanonicalName(r.SignerName) == CanonicalName(o.SignerName) &&
		bytes.Equal(r.Signature, o.Signature)
}

func (r RRSIG) encode(b *builder) {
	b.bytes(r.headerWire())
	b.bytes(r.Signature)
}

// headerWire is the RDATA up to and including the signer name — the part
// that is also prepended to the signed data (RFC 4034 §3.1.8.1). The
// signer name is never compressed.
func (r RRSIG) headerWire() []byte {
	b := newBuilder(false)
	b.uint16(uint16(r.TypeCovered))
	b.byte(r.Algorithm)
	b.byte(r.Labels)
	b.uint32(r.OriginalTTL)
	b.uint32(r.Expiration)
	b.uint32(r.Inception)
	b.uint16(r.KeyTag)
	b.name(r.SignerName, false)
	return b.buf
}

// SignedHeader exposes headerWire for signature construction.
func (r RRSIG) SignedHeader() []byte { return r.headerWire() }

// decodeRRSIG parses an RRSIG RDATA.
func (p *parser) decodeRRSIG(end int) (RData, error) {
	var r RRSIG
	t, err := p.uint16()
	if err != nil {
		return nil, err
	}
	r.TypeCovered = Type(t)
	if r.Algorithm, err = p.byte(); err != nil {
		return nil, err
	}
	if r.Labels, err = p.byte(); err != nil {
		return nil, err
	}
	if r.OriginalTTL, err = p.uint32(); err != nil {
		return nil, err
	}
	if r.Expiration, err = p.uint32(); err != nil {
		return nil, err
	}
	if r.Inception, err = p.uint32(); err != nil {
		return nil, err
	}
	if r.KeyTag, err = p.uint16(); err != nil {
		return nil, err
	}
	if r.SignerName, err = p.name(); err != nil {
		return nil, err
	}
	sig, err := p.bytes(end - p.off)
	if err != nil {
		return nil, err
	}
	r.Signature = append([]byte(nil), sig...)
	return r, nil
}

// decodeDNSKEY parses a DNSKEY RDATA.
func (p *parser) decodeDNSKEY(end int) (RData, error) {
	var k DNSKEY
	var err error
	if k.Flags, err = p.uint16(); err != nil {
		return nil, err
	}
	if k.Protocol, err = p.byte(); err != nil {
		return nil, err
	}
	if k.Algorithm, err = p.byte(); err != nil {
		return nil, err
	}
	pub, err := p.bytes(end - p.off)
	if err != nil {
		return nil, err
	}
	k.PublicKey = append([]byte(nil), pub...)
	return k, nil
}

// KeyTag computes the RFC 4034 Appendix B key tag of a DNSKEY.
func (k DNSKEY) KeyTag() uint16 {
	rdata := k.RDataWire()
	var acc uint32
	for i, b := range rdata {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += (acc >> 16) & 0xFFFF
	return uint16(acc & 0xFFFF)
}

// NameWire returns a name's uncompressed wire encoding (canonical form),
// used in DS digests and canonical RR ordering.
func NameWire(name string) []byte {
	b := newBuilder(false)
	b.name(name, false)
	return b.buf
}

// RDataWireOf renders any RData's wire form (no compression), for
// canonical signing input.
func RDataWireOf(d RData) []byte {
	b := newBuilder(false)
	d.encode(b)
	return b.buf
}
