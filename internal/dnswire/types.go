package dnswire

import "strconv"

// Type is a DNS resource record type.
type Type uint16

// Record types used in this system.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeDS    Type = 43
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeDS:    "DS",
	TypeANY:   "ANY",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "TYPE" + strconv.Itoa(int(t))
}

// ParseType maps a textual record type (as in a master file) to its Type.
// Unknown strings return TypeNone.
func ParseType(s string) Type {
	for t, name := range typeNames {
		if name == s {
			return t
		}
	}
	return TypeNone
}

// Class is a DNS class. Only IN is used in practice.
type Class uint16

// Classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return "CLASS" + strconv.Itoa(int(c))
}

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return "RCODE" + strconv.Itoa(int(r))
}

// Opcode is a DNS operation code.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	}
	return "OPCODE" + strconv.Itoa(int(o))
}
