package dnswire

import (
	"fmt"
	"strings"
)

// Header is the fixed 12-octet DNS message header, with the flag bits
// unpacked into booleans.
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticData      bool
	CheckingDisabled   bool
	RCode              RCode
}

// Question is a single entry of the question section.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record with typed data.
type RR struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type carried by the RR's data.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.RType()
}

func (r RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type(), r.Data)
}

// Message is a complete DNS message.
type Message struct {
	Header
	Questions   []Question
	Answers     []RR
	Authorities []RR
	Additionals []RR
}

// Question1 returns the first question, or a zero Question if none.
func (m *Message) Question1() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// NewQuery builds a standard recursive-desired query for (name, type).
func NewQuery(id uint16, name string, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, Opcode: OpcodeQuery, RecursionDesired: true},
		Questions: []Question{{Name: CanonicalName(name), Type: t, Class: ClassIN}},
	}
}

// ResetQuery re-initializes m as a standard recursion-desired query for
// (name, type), the in-place twin of NewQuery: section backing arrays are
// kept so a scratch Message builds queries allocation-free.
func (m *Message) ResetQuery(id uint16, name string, t Type) {
	*m = Message{
		Header:      Header{ID: id, Opcode: OpcodeQuery, RecursionDesired: true},
		Questions:   m.Questions[:0],
		Answers:     m.Answers[:0],
		Authorities: m.Authorities[:0],
		Additionals: m.Additionals[:0],
	}
	m.Questions = append(m.Questions, Question{Name: CanonicalName(name), Type: t, Class: ClassIN})
}

// NewResponse builds a response skeleton mirroring the query's ID, question
// and recursion-desired flag.
func NewResponse(query *Message) *Message {
	resp := &Message{
		Header: Header{
			ID:               query.ID,
			Response:         true,
			Opcode:           query.Opcode,
			RecursionDesired: query.RecursionDesired,
		},
	}
	resp.Questions = append(resp.Questions, query.Questions...)
	return resp
}

// ResetResponse re-initializes m as a response skeleton for query (the
// in-place twin of NewResponse): section backing arrays are kept so a
// scratch or pooled Message builds responses allocation-free.
func (m *Message) ResetResponse(query *Message) {
	*m = Message{
		Header: Header{
			ID:               query.ID,
			Response:         true,
			Opcode:           query.Opcode,
			RecursionDesired: query.RecursionDesired,
		},
		Questions:   m.Questions[:0],
		Answers:     m.Answers[:0],
		Authorities: m.Authorities[:0],
		Additionals: m.Additionals[:0],
	}
	m.Questions = append(m.Questions, query.Questions...)
}

func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id %d opcode %s rcode %s", m.ID, m.Opcode, m.RCode)
	flags := []struct {
		set  bool
		name string
	}{
		{m.Response, "qr"}, {m.Authoritative, "aa"}, {m.Truncated, "tc"},
		{m.RecursionDesired, "rd"}, {m.RecursionAvailable, "ra"},
	}
	sb.WriteString(" flags:")
	for _, f := range flags {
		if f.set {
			sb.WriteByte(' ')
			sb.WriteString(f.name)
		}
	}
	sb.WriteByte('\n')
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, sec := range []struct {
		label string
		rrs   []RR
	}{{"answer", m.Answers}, {"authority", m.Authorities}, {"additional", m.Additionals}} {
		for _, rr := range sec.rrs {
			fmt.Fprintf(&sb, "%s\t; %s\n", rr, sec.label)
		}
	}
	return sb.String()
}
