// Package dnswire implements the DNS wire format (RFC 1034/1035): message
// packing and unpacking with name compression, and typed resource record
// data for the record types used by the rest of the system.
//
// Domain names are passed around as strings in canonical form: lower case,
// fully qualified, with a trailing dot. The root is ".". CanonicalName
// converts arbitrary user input into this form.
package dnswire

import (
	"errors"
	"strings"
)

// Errors returned by name handling and message parsing.
var (
	ErrNameTooLong  = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label in name")
	ErrBadName      = errors.New("dnswire: malformed name")
)

// MaxNameLen is the maximum length of a domain name on the wire, per
// RFC 1035 §2.3.4.
const MaxNameLen = 255

// MaxLabelLen is the maximum length of a single label.
const MaxLabelLen = 63

// CanonicalName converts s into canonical form: lower case with a trailing
// dot. An empty string and "." both canonicalize to the root ".".
func CanonicalName(s string) string {
	if s == "" || s == "." {
		return "."
	}
	s = toLowerASCII(s)
	if !strings.HasSuffix(s, ".") {
		s += "."
	}
	return s
}

// toLowerASCII lowercases A-Z only. Names are byte strings (RFC 4343):
// strings.ToLower would rewrite non-UTF-8 label bytes to U+FFFD and
// silently change the name.
func toLowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			b := []byte(s)
			for ; i < len(b); i++ {
				if 'A' <= b[i] && b[i] <= 'Z' {
					b[i] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// SplitLabels returns the labels of a canonical name, most-specific first.
// The root name yields an empty slice.
func SplitLabels(name string) []string {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	return strings.Split(strings.TrimSuffix(name, "."), ".")
}

// CountLabels returns the number of labels in name. The root has zero.
// A canonical name carries one trailing dot per label, so this is a dot
// count — no splitting, no allocation (the referral-descent hot path
// calls this per zone comparison).
func CountLabels(name string) int {
	name = CanonicalName(name)
	if name == "." {
		return 0
	}
	n := 0
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			n++
		}
	}
	return n
}

// ValidName reports whether name is a syntactically valid canonical domain
// name: each label 1..63 octets and total wire length within 255 octets.
func ValidName(name string) error {
	name = CanonicalName(name)
	if name == "." {
		return nil
	}
	wire := 1 // root terminator
	start := 0
	for i := 0; i < len(name); i++ {
		if name[i] != '.' {
			continue
		}
		l := i - start
		if l == 0 {
			return ErrEmptyLabel
		}
		if l > MaxLabelLen {
			return ErrLabelTooLong
		}
		wire += 1 + l
		start = i + 1
	}
	if wire > MaxNameLen {
		return ErrNameTooLong
	}
	return nil
}

// Parent returns the name with its leftmost label removed. The parent of
// the root is the root.
func Parent(name string) string {
	name = CanonicalName(name)
	if name == "." {
		return "."
	}
	i := strings.IndexByte(name, '.')
	if i+1 >= len(name) {
		return "."
	}
	return name[i+1:]
}

// IsSubdomain reports whether child is equal to or below parent.
func IsSubdomain(child, parent string) bool {
	child = CanonicalName(child)
	parent = CanonicalName(parent)
	if parent == "." {
		return true
	}
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// Join prepends label to name, producing a canonical child name.
func Join(label, name string) string {
	name = CanonicalName(name)
	if name == "." {
		return CanonicalName(label + ".")
	}
	return CanonicalName(label + "." + name)
}
