package dnswire

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
)

// builder accumulates wire-format bytes and tracks name offsets for
// compression (RFC 1035 §4.1.4). Builders are pooled: the byte buffer and
// the offsets map survive across messages, so a steady-state Pack
// allocates only the returned slice.
type builder struct {
	buf      []byte
	offsets  map[string]int // canonical name suffix -> offset of its first encoding
	compress bool
}

var builderPool = sync.Pool{New: func() any {
	return &builder{
		buf:     make([]byte, 0, 512),
		offsets: make(map[string]int, 16),
	}
}}

func newBuilder(compress bool) *builder {
	b := builderPool.Get().(*builder)
	b.buf = b.buf[:0]
	clear(b.offsets)
	b.compress = compress
	return b
}

// release returns the builder to the pool. The caller must not touch
// b.buf afterwards.
func (b *builder) release() { builderPool.Put(b) }

func (b *builder) byte(v uint8)    { b.buf = append(b.buf, v) }
func (b *builder) bytes(v []byte)  { b.buf = append(b.buf, v...) }
func (b *builder) uint16(v uint16) { b.buf = binary.BigEndian.AppendUint16(b.buf, v) }
func (b *builder) uint32(v uint32) { b.buf = binary.BigEndian.AppendUint32(b.buf, v) }

// name appends a (possibly compressed) encoding of the canonical form of n.
// Compression pointers can only target offsets < 0x4000; beyond that the
// name is written in full. Suffixes of a canonical name are substrings of
// it ("cachetest.nl." within "1414.cachetest.nl."), so the offsets table
// is keyed by shared slices of n — no per-label strings are built.
func (b *builder) name(n string, allowCompress bool) {
	n = CanonicalName(n)
	if n != "." {
		for start := 0; start < len(n); {
			suffix := n[start:]
			if b.compress && allowCompress {
				if off, ok := b.offsets[suffix]; ok && off < 0x4000 {
					b.uint16(0xC000 | uint16(off))
					return
				}
			}
			if len(b.buf) < 0x4000 {
				b.offsets[suffix] = len(b.buf)
			}
			end := strings.IndexByte(suffix, '.')
			label := suffix[:end]
			b.byte(uint8(len(label)))
			b.buf = append(b.buf, label...)
			start += end + 1
		}
	}
	b.byte(0)
}

// Pack encodes the message into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.pack(nil, true)
}

// AppendPack appends the compressed wire encoding of m to dst and returns
// the extended slice, allocating only when dst lacks capacity. Senders
// whose transport copies the payload (netsim does; UDP writes do) can
// recycle one buffer across every send.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	return m.pack(dst, true)
}

// PackUncompressed encodes the message without name compression; useful for
// testing decoders against both forms.
func (m *Message) PackUncompressed() ([]byte, error) {
	return m.pack(nil, false)
}

func (m *Message) pack(dst []byte, compress bool) ([]byte, error) {
	if len(m.Questions) > 0xffff || len(m.Answers) > 0xffff ||
		len(m.Authorities) > 0xffff || len(m.Additionals) > 0xffff {
		return nil, fmt.Errorf("dnswire: section too large")
	}
	b := newBuilder(compress)
	defer b.release()
	b.uint16(m.ID)
	b.uint16(m.flags())
	b.uint16(uint16(len(m.Questions)))
	b.uint16(uint16(len(m.Answers)))
	b.uint16(uint16(len(m.Authorities)))
	b.uint16(uint16(len(m.Additionals)))

	for _, q := range m.Questions {
		if err := ValidName(q.Name); err != nil {
			return nil, fmt.Errorf("dnswire: question %q: %w", q.Name, err)
		}
		b.name(q.Name, true)
		b.uint16(uint16(q.Type))
		b.uint16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range sec {
			if err := packRR(b, rr); err != nil {
				return nil, err
			}
		}
	}
	// The builder's buffer is pooled; hand the caller a copy.
	return append(dst, b.buf...), nil
}

// validRDataNames checks the domain names embedded in the known rdata
// types. The builder cannot faithfully encode a name with empty or
// oversized labels (it would emit a premature terminator), so Pack
// validates these like owner names and refuses rather than producing
// corrupt wire.
func validRDataNames(d RData) error {
	switch v := d.(type) {
	case NS:
		return ValidName(v.Host)
	case CNAME:
		return ValidName(v.Target)
	case PTR:
		return ValidName(v.Target)
	case MX:
		return ValidName(v.Host)
	case SOA:
		if err := ValidName(v.MName); err != nil {
			return err
		}
		return ValidName(v.RName)
	case RRSIG:
		return ValidName(v.SignerName)
	case NSEC:
		return ValidName(v.NextName)
	}
	return nil
}

func packRR(b *builder, rr RR) error {
	if rr.Data == nil {
		return fmt.Errorf("dnswire: record %q has no data", rr.Name)
	}
	if err := ValidName(rr.Name); err != nil {
		return fmt.Errorf("dnswire: record %q: %w", rr.Name, err)
	}
	if err := validRDataNames(rr.Data); err != nil {
		return fmt.Errorf("dnswire: record %q rdata name: %w", rr.Name, err)
	}
	b.name(rr.Name, true)
	b.uint16(uint16(rr.Type()))
	b.uint16(uint16(rr.Class))
	b.uint32(rr.TTL)
	lenAt := len(b.buf)
	b.uint16(0) // rdlength placeholder
	rr.Data.encode(b)
	rdlen := len(b.buf) - lenAt - 2
	if rdlen > 0xffff {
		return fmt.Errorf("dnswire: rdata of %q too large (%d)", rr.Name, rdlen)
	}
	binary.BigEndian.PutUint16(b.buf[lenAt:], uint16(rdlen))
	return nil
}

func (m *Message) flags() uint16 {
	var f uint16
	if m.Response {
		f |= 1 << 15
	}
	f |= uint16(m.Opcode&0xf) << 11
	if m.Authoritative {
		f |= 1 << 10
	}
	if m.Truncated {
		f |= 1 << 9
	}
	if m.RecursionDesired {
		f |= 1 << 8
	}
	if m.RecursionAvailable {
		f |= 1 << 7
	}
	if m.AuthenticData {
		f |= 1 << 5
	}
	if m.CheckingDisabled {
		f |= 1 << 4
	}
	f |= uint16(m.RCode & 0xf)
	return f
}
