package dnswire

import (
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"Example.NL", "example.nl."},
		{"example.nl.", "example.nl."},
		{"WWW.Example.COM.", "www.example.com."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	if got := SplitLabels("."); got != nil {
		t.Errorf("SplitLabels(.) = %v, want nil", got)
	}
	got := SplitLabels("www.example.nl")
	want := []string{"www", "example", "nl"}
	if len(got) != len(want) {
		t.Fatalf("SplitLabels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("label %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCountLabels(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{".", 0}, {"nl.", 1}, {"example.nl.", 2}, {"a.b.c.d.", 4},
	}
	for _, c := range cases {
		if got := CountLabels(c.in); got != c.want {
			t.Errorf("CountLabels(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestValidName(t *testing.T) {
	if err := ValidName("."); err != nil {
		t.Errorf("root should be valid: %v", err)
	}
	if err := ValidName("example.nl"); err != nil {
		t.Errorf("example.nl should be valid: %v", err)
	}
	long := strings.Repeat("a", 64)
	if err := ValidName(long + ".nl"); err != ErrLabelTooLong {
		t.Errorf("64-char label: got %v, want ErrLabelTooLong", err)
	}
	if err := ValidName("a..nl"); err != ErrEmptyLabel {
		t.Errorf("empty label: got %v, want ErrEmptyLabel", err)
	}
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		sb.WriteString("abcd.")
	}
	if err := ValidName(sb.String()); err != ErrNameTooLong {
		t.Errorf("300-octet name: got %v, want ErrNameTooLong", err)
	}
	// Exactly at the limit: 4 labels of 63 octets = 4*(64)+1 = 257 > 255,
	// so use 3 labels of 63 and one of 59: 3*64 + 60 + 1 = 253.
	ok := strings.Repeat("a", 63) + "." + strings.Repeat("b", 63) + "." +
		strings.Repeat("c", 63) + "." + strings.Repeat("d", 59)
	if err := ValidName(ok); err != nil {
		t.Errorf("253-octet name should be valid: %v", err)
	}
}

func TestParent(t *testing.T) {
	cases := []struct{ in, want string }{
		{".", "."},
		{"nl.", "."},
		{"example.nl.", "nl."},
		{"www.example.nl.", "example.nl."},
	}
	for _, c := range cases {
		if got := Parent(c.in); got != c.want {
			t.Errorf("Parent(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsSubdomain(t *testing.T) {
	cases := []struct {
		child, parent string
		want          bool
	}{
		{"www.example.nl.", "example.nl.", true},
		{"example.nl.", "example.nl.", true},
		{"example.nl.", ".", true},
		{"badexample.nl.", "example.nl.", false},
		{"nl.", "example.nl.", false},
		{"Example.NL", "example.nl.", true},
	}
	for _, c := range cases {
		if got := IsSubdomain(c.child, c.parent); got != c.want {
			t.Errorf("IsSubdomain(%q, %q) = %v, want %v", c.child, c.parent, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	if got := Join("www", "example.nl."); got != "www.example.nl." {
		t.Errorf("Join = %q", got)
	}
	if got := Join("nl", "."); got != "nl." {
		t.Errorf("Join at root = %q", got)
	}
}
