package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	m := NewQuery(0x1234, "1414.cachetest.nl", TypeAAAA)
	resp := NewResponse(m)
	resp.Authoritative = true
	resp.Answers = append(resp.Answers, RR{
		Name: "1414.cachetest.nl.", Class: ClassIN, TTL: 60,
		Data: AAAA{Addr: MustAddr("fd0f:3897:faf7:a375:1:586::3c")},
	})
	resp.Authorities = append(resp.Authorities,
		RR{Name: "cachetest.nl.", Class: ClassIN, TTL: 3600, Data: NS{Host: "ns1.cachetest.nl."}},
		RR{Name: "cachetest.nl.", Class: ClassIN, TTL: 3600, Data: NS{Host: "ns2.cachetest.nl."}},
	)
	resp.Additionals = append(resp.Additionals,
		RR{Name: "ns1.cachetest.nl.", Class: ClassIN, TTL: 3600, Data: A{Addr: MustAddr("192.0.2.1")}},
		RR{Name: "ns2.cachetest.nl.", Class: ClassIN, TTL: 3600, Data: A{Addr: MustAddr("192.0.2.2")}},
	)
	return resp
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	for _, pack := range []func() ([]byte, error){m.Pack, m.PackUncompressed} {
		wire, err := pack()
		if err != nil {
			t.Fatalf("pack: %v", err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("unpack: %v", err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, m)
		}
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	compressed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.PackUncompressed()
	if err != nil {
		t.Fatal(err)
	}
	if len(compressed) >= len(raw) {
		t.Errorf("compression did not help: %d >= %d", len(compressed), len(raw))
	}
}

func TestUnpackRejectsTruncation(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(wire); n++ {
		if _, err := Unpack(wire[:n]); err == nil {
			t.Errorf("Unpack accepted %d-byte prefix of %d-byte message", n, len(wire))
		}
	}
}

func TestUnpackRejectsTrailingGarbage(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(append(wire, 0x00)); err != ErrTrailingGarbage {
		t.Errorf("got %v, want ErrTrailingGarbage", err)
	}
}

func TestUnpackRejectsPointerLoops(t *testing.T) {
	// Header with one question whose name is a self-pointer.
	msg := make([]byte, 12)
	msg[5] = 1                  // qdcount = 1
	msg = append(msg, 0xC0, 12) // pointer to itself
	msg = append(msg, 0, 1, 0, 1)
	if _, err := Unpack(msg); err == nil {
		t.Error("Unpack accepted self-referential compression pointer")
	}
}

func TestUnpackRejectsForwardPointer(t *testing.T) {
	msg := make([]byte, 12)
	msg[5] = 1
	msg = append(msg, 0xC0, 40) // forward pointer
	msg = append(msg, 0, 1, 0, 1)
	if _, err := Unpack(msg); err == nil {
		t.Error("Unpack accepted forward compression pointer")
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	for i := 0; i < 1<<7; i++ {
		m := &Message{Header: Header{
			ID:                 uint16(i * 523),
			Response:           i&1 != 0,
			Authoritative:      i&2 != 0,
			Truncated:          i&4 != 0,
			RecursionDesired:   i&8 != 0,
			RecursionAvailable: i&16 != 0,
			AuthenticData:      i&32 != 0,
			CheckingDisabled:   i&64 != 0,
			Opcode:             Opcode(i % 3),
			RCode:              RCode(i % 6),
		}}
		wire, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.Header != m.Header {
			t.Fatalf("header mismatch: got %+v want %+v", got.Header, m.Header)
		}
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	rrs := []RR{
		{Name: "a.example.", Class: ClassIN, TTL: 1, Data: A{Addr: MustAddr("10.1.2.3")}},
		{Name: "a.example.", Class: ClassIN, TTL: 2, Data: AAAA{Addr: MustAddr("2001:db8::1")}},
		{Name: "example.", Class: ClassIN, TTL: 3, Data: NS{Host: "ns.example."}},
		{Name: "w.example.", Class: ClassIN, TTL: 4, Data: CNAME{Target: "a.example."}},
		{Name: "3.2.1.in-addr.arpa.", Class: ClassIN, TTL: 5, Data: PTR{Target: "a.example."}},
		{Name: "example.", Class: ClassIN, TTL: 6, Data: MX{Pref: 10, Host: "mail.example."}},
		{Name: "example.", Class: ClassIN, TTL: 7, Data: TXT{Strings: []string{"hello", "world"}}},
		{Name: "example.", Class: ClassIN, TTL: 8, Data: SOA{
			MName: "ns.example.", RName: "hostmaster.example.",
			Serial: 2018052201, Refresh: 7200, Retry: 3600, Expire: 86400, Minimum: 60,
		}},
		{Name: "nl.", Class: ClassIN, TTL: 9, Data: DS{
			KeyTag: 34112, Algorithm: 8, DigestType: 2, Digest: []byte{0xde, 0xad, 0xbe, 0xef},
		}},
		{Name: ".", Class: Class(4096), TTL: 0, Data: OPT{Options: []byte{}}},
		{Name: "example.", Class: ClassIN, TTL: 11, Data: Unknown{Type: 99, Data: []byte{1, 2, 3}}},
	}
	m := &Message{Header: Header{ID: 7, Response: true}, Answers: rrs}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(rrs) {
		t.Fatalf("got %d answers, want %d", len(got.Answers), len(rrs))
	}
	for i, rr := range got.Answers {
		if !rr.Data.Equal(rrs[i].Data) {
			t.Errorf("record %d (%s): got %v, want %v", i, rr.Type(), rr.Data, rrs[i].Data)
		}
		if rr.TTL != rrs[i].TTL {
			t.Errorf("record %d TTL: got %d, want %d", i, rr.TTL, rrs[i].TTL)
		}
	}
}

func TestRDataEqualCrossType(t *testing.T) {
	a := A{Addr: MustAddr("10.0.0.1")}
	aaaa := AAAA{Addr: MustAddr("::1")}
	if a.Equal(aaaa) || aaaa.Equal(a) {
		t.Error("cross-type RData compared equal")
	}
	ns1, ns2 := NS{Host: "NS1.Example."}, NS{Host: "ns1.example."}
	if !ns1.Equal(ns2) {
		t.Error("NS equality should be case-insensitive")
	}
}

// randomName builds a valid random domain name from a seed.
func randomName(r *rand.Rand) string {
	depth := 1 + r.Intn(4)
	name := ""
	for i := 0; i < depth; i++ {
		l := 1 + r.Intn(12)
		label := make([]byte, l)
		for j := range label {
			label[j] = byte('a' + r.Intn(26))
		}
		name += string(label) + "."
	}
	return name
}

func TestQuickQueryRoundTrip(t *testing.T) {
	f := func(id uint16, seed int64, t16 uint16) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewQuery(id, randomName(r), Type(t16))
		wire, err := q.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnswerRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{Header: Header{ID: uint16(r.Uint32()), Response: true}}
		n := r.Intn(8)
		for i := 0; i < n; i++ {
			name := randomName(r)
			var data RData
			switch r.Intn(5) {
			case 0:
				var b [4]byte
				r.Read(b[:])
				data = A{Addr: netip.AddrFrom4(b)}
			case 1:
				var b [16]byte
				r.Read(b[:])
				data = AAAA{Addr: netip.AddrFrom16(b)}
			case 2:
				data = NS{Host: randomName(r)}
			case 3:
				data = CNAME{Target: randomName(r)}
			case 4:
				data = TXT{Strings: []string{randomName(r)}}
			}
			m.Answers = append(m.Answers, RR{
				Name: name, Class: ClassIN, TTL: r.Uint32() % 1e6, Data: data,
			})
		}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnpackNeverPanics feeds random bytes to the parser; it must
// return an error or a message, never panic.
func TestQuickUnpackNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Unpack(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuestion1Empty(t *testing.T) {
	var m Message
	if q := m.Question1(); q.Name != "" || q.Type != TypeNone {
		t.Errorf("Question1 on empty message = %+v", q)
	}
}

func TestMessageString(t *testing.T) {
	s := sampleMessage().String()
	for _, want := range []string{"qr", "aa", "1414.cachetest.nl.", "AAAA", "ns1.cachetest.nl."} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestEDNSHelpers(t *testing.T) {
	m := NewQuery(1, "example.nl.", TypeA)
	if _, _, ok := m.EDNS(); ok {
		t.Fatal("EDNS reported on a plain query")
	}
	m.AddEDNS(4096, true)
	size, do, ok := m.EDNS()
	if !ok || size != 4096 || !do {
		t.Fatalf("EDNS = %d/%v/%v", size, do, ok)
	}
	// AddEDNS replaces rather than duplicates.
	m.AddEDNS(1232, false)
	if got := len(m.Additionals); got != 1 {
		t.Fatalf("OPT records = %d", got)
	}
	size, do, _ = m.EDNS()
	if size != 1232 || do {
		t.Errorf("EDNS after replace = %d/%v", size, do)
	}
	// It survives the wire.
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if size, do, ok := got.EDNS(); !ok || size != 1232 || do {
		t.Errorf("EDNS after round trip = %d/%v/%v", size, do, ok)
	}
}

// TestQuickNSECBitmapRoundTrip: random type sets survive the window-block
// bitmap encoding.
func TestQuickNSECBitmapRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		seen := map[Type]bool{}
		var types []Type
		for i := 0; i < 1+r.Intn(20); i++ {
			typ := Type(r.Intn(65535) + 1)
			if !seen[typ] {
				seen[typ] = true
				types = append(types, typ)
			}
		}
		n := NSEC{NextName: randomName(r), Types: types}
		m := &Message{Header: Header{ID: 1, Response: true}}
		m.Answers = append(m.Answers, RR{Name: randomName(r), Class: ClassIN, TTL: 60, Data: n})
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return got.Answers[0].Data.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCompareCanonicalProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomName(r), randomName(r), randomName(r)
		// Antisymmetry and reflexivity.
		if CompareCanonical(a, a) != 0 {
			return false
		}
		if CompareCanonical(a, b) != -CompareCanonical(b, a) {
			return false
		}
		// Transitivity on a sorted triple.
		names := []string{a, b, c}
		sort.Slice(names, func(i, j int) bool { return CompareCanonical(names[i], names[j]) < 0 })
		return CompareCanonical(names[0], names[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
