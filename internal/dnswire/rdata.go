package dnswire

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// RData is the typed contents of a resource record. Implementations are
// value types; Equal compares semantic equality (used for cache updates and
// duplicate suppression).
type RData interface {
	// RType is the record type this data belongs to.
	RType() Type
	// String renders the data in master-file presentation format.
	String() string
	// Equal reports whether other carries the same data.
	Equal(other RData) bool

	encode(b *builder)
}

// A is an IPv4 address record.
type A struct {
	Addr netip.Addr
}

// RType implements RData.
func (A) RType() Type { return TypeA }

func (a A) String() string { return a.Addr.String() }

// Equal implements RData.
func (a A) Equal(other RData) bool {
	o, ok := other.(A)
	return ok && a.Addr == o.Addr
}

func (a A) encode(b *builder) {
	v4 := a.Addr.As4()
	b.bytes(v4[:])
}

// AAAA is an IPv6 address record.
type AAAA struct {
	Addr netip.Addr
}

// RType implements RData.
func (AAAA) RType() Type { return TypeAAAA }

func (a AAAA) String() string { return a.Addr.String() }

// Equal implements RData.
func (a AAAA) Equal(other RData) bool {
	o, ok := other.(AAAA)
	return ok && a.Addr == o.Addr
}

func (a AAAA) encode(b *builder) {
	v6 := a.Addr.As16()
	b.bytes(v6[:])
}

// NS names an authoritative nameserver for the owner zone.
type NS struct {
	Host string
}

// RType implements RData.
func (NS) RType() Type { return TypeNS }

func (n NS) String() string { return n.Host }

// Equal implements RData.
func (n NS) Equal(other RData) bool {
	o, ok := other.(NS)
	return ok && CanonicalName(n.Host) == CanonicalName(o.Host)
}

func (n NS) encode(b *builder) { b.name(n.Host, true) }

// CNAME aliases the owner name to Target.
type CNAME struct {
	Target string
}

// RType implements RData.
func (CNAME) RType() Type { return TypeCNAME }

func (c CNAME) String() string { return c.Target }

// Equal implements RData.
func (c CNAME) Equal(other RData) bool {
	o, ok := other.(CNAME)
	return ok && CanonicalName(c.Target) == CanonicalName(o.Target)
}

func (c CNAME) encode(b *builder) { b.name(c.Target, true) }

// PTR points the owner name at Target (reverse mapping).
type PTR struct {
	Target string
}

// RType implements RData.
func (PTR) RType() Type { return TypePTR }

func (p PTR) String() string { return p.Target }

// Equal implements RData.
func (p PTR) Equal(other RData) bool {
	o, ok := other.(PTR)
	return ok && CanonicalName(p.Target) == CanonicalName(o.Target)
}

func (p PTR) encode(b *builder) { b.name(p.Target, true) }

// MX names a mail exchanger with a preference.
type MX struct {
	Pref uint16
	Host string
}

// RType implements RData.
func (MX) RType() Type { return TypeMX }

func (m MX) String() string { return strconv.Itoa(int(m.Pref)) + " " + m.Host }

// Equal implements RData.
func (m MX) Equal(other RData) bool {
	o, ok := other.(MX)
	return ok && m.Pref == o.Pref && CanonicalName(m.Host) == CanonicalName(o.Host)
}

func (m MX) encode(b *builder) {
	b.uint16(m.Pref)
	b.name(m.Host, true)
}

// TXT carries one or more character strings.
type TXT struct {
	Strings []string
}

// RType implements RData.
func (TXT) RType() Type { return TypeTXT }

func (t TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = strconv.Quote(s)
	}
	return strings.Join(parts, " ")
}

// Equal implements RData.
func (t TXT) Equal(other RData) bool {
	o, ok := other.(TXT)
	if !ok || len(t.Strings) != len(o.Strings) {
		return false
	}
	for i := range t.Strings {
		if t.Strings[i] != o.Strings[i] {
			return false
		}
	}
	return true
}

func (t TXT) encode(b *builder) {
	for _, s := range t.Strings {
		b.byte(uint8(len(s)))
		b.bytes([]byte(s))
	}
}

// SOA is the start-of-authority record for a zone. Minimum doubles as the
// negative-caching TTL (RFC 2308).
type SOA struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// RType implements RData.
func (SOA) RType() Type { return TypeSOA }

func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// Equal implements RData.
func (s SOA) Equal(other RData) bool {
	o, ok := other.(SOA)
	return ok && CanonicalName(s.MName) == CanonicalName(o.MName) &&
		CanonicalName(s.RName) == CanonicalName(o.RName) &&
		s.Serial == o.Serial && s.Refresh == o.Refresh &&
		s.Retry == o.Retry && s.Expire == o.Expire && s.Minimum == o.Minimum
}

func (s SOA) encode(b *builder) {
	b.name(s.MName, true)
	b.name(s.RName, true)
	b.uint32(s.Serial)
	b.uint32(s.Refresh)
	b.uint32(s.Retry)
	b.uint32(s.Expire)
	b.uint32(s.Minimum)
}

// DS is a delegation-signer digest, stored at the parent side of a
// delegation. (Used for the Figure 5 Root/"nl DS" workload.)
type DS struct {
	KeyTag     uint16
	Algorithm  uint8
	DigestType uint8
	Digest     []byte
}

// RType implements RData.
func (DS) RType() Type { return TypeDS }

func (d DS) String() string {
	return fmt.Sprintf("%d %d %d %s", d.KeyTag, d.Algorithm, d.DigestType,
		strings.ToUpper(hex.EncodeToString(d.Digest)))
}

// Equal implements RData.
func (d DS) Equal(other RData) bool {
	o, ok := other.(DS)
	return ok && d.KeyTag == o.KeyTag && d.Algorithm == o.Algorithm &&
		d.DigestType == o.DigestType && bytes.Equal(d.Digest, o.Digest)
}

func (d DS) encode(b *builder) {
	b.uint16(d.KeyTag)
	b.byte(d.Algorithm)
	b.byte(d.DigestType)
	b.bytes(d.Digest)
}

// OPT is the EDNS0 pseudo-record (RFC 6891). Only the UDP payload size is
// interpreted; options are carried opaquely.
type OPT struct {
	Options []byte
}

// RType implements RData.
func (OPT) RType() Type { return TypeOPT }

func (o OPT) String() string { return "OPT " + hex.EncodeToString(o.Options) }

// Equal implements RData.
func (o OPT) Equal(other RData) bool {
	v, ok := other.(OPT)
	return ok && bytes.Equal(o.Options, v.Options)
}

func (o OPT) encode(b *builder) { b.bytes(o.Options) }

// Unknown carries the raw RDATA of a record type this package does not
// interpret. It round-trips losslessly.
type Unknown struct {
	Type Type
	Data []byte
}

// RType implements RData.
func (u Unknown) RType() Type { return u.Type }

func (u Unknown) String() string {
	return fmt.Sprintf("\\# %d %s", len(u.Data), hex.EncodeToString(u.Data))
}

// Equal implements RData.
func (u Unknown) Equal(other RData) bool {
	o, ok := other.(Unknown)
	return ok && u.Type == o.Type && bytes.Equal(u.Data, o.Data)
}

func (u Unknown) encode(b *builder) { b.bytes(u.Data) }

// MustAddr parses s as an IP address and panics on failure. It is a
// convenience for building fixture records.
func MustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic("dnswire: bad address literal: " + s)
	}
	return a
}
