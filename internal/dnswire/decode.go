package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync"
)

// Parsing errors.
var (
	ErrTruncatedMessage = errors.New("dnswire: message truncated")
	ErrBadPointer       = errors.New("dnswire: bad compression pointer")
	ErrTrailingGarbage  = errors.New("dnswire: trailing bytes after message")
)

type parser struct {
	data []byte
	off  int
}

func (p *parser) need(n int) error {
	if p.off+n > len(p.data) {
		return ErrTruncatedMessage
	}
	return nil
}

func (p *parser) byte() (uint8, error) {
	if err := p.need(1); err != nil {
		return 0, err
	}
	v := p.data[p.off]
	p.off++
	return v, nil
}

func (p *parser) uint16() (uint16, error) {
	if err := p.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(p.data[p.off:])
	p.off += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if err := p.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(p.data[p.off:])
	p.off += 4
	return v, nil
}

func (p *parser) bytes(n int) ([]byte, error) {
	// n can go negative when a decoder computes "rest of rdata" after a
	// compressed name already overran the claimed rdata length.
	if n < 0 {
		return nil, ErrTruncatedMessage
	}
	if err := p.need(n); err != nil {
		return nil, err
	}
	v := p.data[p.off : p.off+n]
	p.off += n
	return v, nil
}

// name reads a possibly-compressed domain name starting at the current
// offset, following compression pointers. Pointer chains are bounded to
// prevent loops.
func (p *parser) name() (string, error) {
	n, next, err := readName(p.data, p.off)
	if err != nil {
		return "", err
	}
	p.off = next
	return n, nil
}

// nameIntern canonicalizes decoded names through a process-wide table: a
// simulation decodes the same handful of names millions of times, and a
// map hit costs no allocation (the []byte-keyed lookup does not copy).
// The table is capped so adversarial or huge-population runs degrade to
// per-name allocation instead of unbounded growth.
var nameIntern = struct {
	mu sync.Mutex
	m  map[string]string
}{m: make(map[string]string, 256)}

const nameInternCap = 1 << 17

func internName(b []byte) string {
	ni := &nameIntern
	ni.mu.Lock()
	s, ok := ni.m[string(b)]
	if !ok {
		s = string(b)
		if len(ni.m) < nameInternCap {
			ni.m[s] = s
		}
	}
	ni.mu.Unlock()
	return s
}

// readName decodes a name at off in data, returning the canonical name and
// the offset just past the name's in-place encoding. The presentation form
// is assembled (and lowercased) in a stack buffer, so decoding costs at
// most one string allocation per name regardless of label count (none when
// the name interns).
func readName(data []byte, off int) (string, int, error) {
	var buf [MaxNameLen]byte // wire length caps the presentation length too
	name := buf[:0]
	ptrBudget := 64 // far more than any legitimate message needs
	next := -1      // offset after the first pointer, i.e. where parsing resumes
	wireLen := 0
	for {
		if off >= len(data) {
			return "", 0, ErrTruncatedMessage
		}
		l := int(data[off])
		switch {
		case l == 0:
			if next < 0 {
				next = off + 1
			}
			if len(name) == 0 {
				return ".", next, nil
			}
			return internName(name), next, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(data) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(l&0x3F)<<8 | int(data[off+1])
			if ptr >= off {
				// Forward (or self) pointers cannot occur in well-formed
				// messages and could loop.
				return "", 0, ErrBadPointer
			}
			if next < 0 {
				next = off + 2
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrBadPointer
			}
			off = ptr
		case l&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type 0x%x", ErrBadName, l&0xC0)
		default:
			if off+1+l > len(data) {
				return "", 0, ErrTruncatedMessage
			}
			wireLen += 1 + l
			if wireLen+1 > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			for _, c := range data[off+1 : off+1+l] {
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				name = append(name, c)
			}
			name = append(name, '.')
			off += 1 + l
		}
	}
}

// Unpack parses a complete DNS message from wire format.
func Unpack(data []byte) (*Message, error) {
	m := &Message{}
	if err := UnpackInto(m, data); err != nil {
		return nil, err
	}
	return m, nil
}

// UnpackInto parses a complete DNS message from wire format into m,
// reusing m's section slices (their backing arrays, not their contents).
// Steady-state decoding through a scratch or pooled Message is therefore
// allocation-free. On error m holds partially decoded data and must not
// be used.
func UnpackInto(m *Message, data []byte) error {
	p := &parser{data: data}
	*m = Message{
		Questions:   m.Questions[:0],
		Answers:     m.Answers[:0],
		Authorities: m.Authorities[:0],
		Additionals: m.Additionals[:0],
	}
	id, err := p.uint16()
	if err != nil {
		return err
	}
	flags, err := p.uint16()
	if err != nil {
		return err
	}
	m.ID = id
	m.Response = flags&(1<<15) != 0
	m.Opcode = Opcode(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.AuthenticData = flags&(1<<5) != 0
	m.CheckingDisabled = flags&(1<<4) != 0
	m.RCode = RCode(flags & 0xf)

	var counts [4]uint16
	for i := range counts {
		if counts[i], err = p.uint16(); err != nil {
			return err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		q, err := p.question()
		if err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	for s := 0; s < 3; s++ {
		sec := &m.Answers
		switch s {
		case 1:
			sec = &m.Authorities
		case 2:
			sec = &m.Additionals
		}
		if c := int(counts[s+1]); c > 0 && cap(*sec) < c {
			*sec = make([]RR, 0, c)
		}
		for i := 0; i < int(counts[s+1]); i++ {
			rr, err := p.rr()
			if err != nil {
				return fmt.Errorf("%s %d: %w", sectionNames[s], i, err)
			}
			*sec = append(*sec, rr)
		}
	}
	if p.off != len(data) {
		return ErrTrailingGarbage
	}
	return nil
}

var sectionNames = [3]string{"answer", "authority", "additional"}

func (p *parser) question() (Question, error) {
	var q Question
	name, err := p.name()
	if err != nil {
		return q, err
	}
	t, err := p.uint16()
	if err != nil {
		return q, err
	}
	c, err := p.uint16()
	if err != nil {
		return q, err
	}
	q.Name, q.Type, q.Class = name, Type(t), Class(c)
	return q, nil
}

func (p *parser) rr() (RR, error) {
	var rr RR
	name, err := p.name()
	if err != nil {
		return rr, err
	}
	t16, err := p.uint16()
	if err != nil {
		return rr, err
	}
	c, err := p.uint16()
	if err != nil {
		return rr, err
	}
	ttl, err := p.uint32()
	if err != nil {
		return rr, err
	}
	rdlen, err := p.uint16()
	if err != nil {
		return rr, err
	}
	if err := p.need(int(rdlen)); err != nil {
		return rr, err
	}
	rdataEnd := p.off + int(rdlen)
	data, err := p.rdata(Type(t16), rdataEnd)
	if err != nil {
		return rr, err
	}
	if p.off != rdataEnd {
		return rr, fmt.Errorf("dnswire: rdata length mismatch for %s", Type(t16))
	}
	rr.Name, rr.Class, rr.TTL, rr.Data = name, Class(c), ttl, data
	return rr, nil
}

func (p *parser) rdata(t Type, end int) (RData, error) {
	switch t {
	case TypeA:
		b, err := p.bytes(4)
		if err != nil {
			return nil, err
		}
		return internA(A{Addr: netip.AddrFrom4([4]byte(b))}), nil
	case TypeAAAA:
		b, err := p.bytes(16)
		if err != nil {
			return nil, err
		}
		return internAAAA(AAAA{Addr: netip.AddrFrom16([16]byte(b))}), nil
	case TypeNS:
		h, err := p.name()
		if err != nil {
			return nil, err
		}
		return internNS(NS{Host: h}), nil
	case TypeCNAME:
		h, err := p.name()
		if err != nil {
			return nil, err
		}
		return internCNAME(CNAME{Target: h}), nil
	case TypePTR:
		h, err := p.name()
		return PTR{Target: h}, err
	case TypeMX:
		pref, err := p.uint16()
		if err != nil {
			return nil, err
		}
		h, err := p.name()
		return MX{Pref: pref, Host: h}, err
	case TypeTXT:
		var strs []string
		for p.off < end {
			l, err := p.byte()
			if err != nil {
				return nil, err
			}
			s, err := p.bytes(int(l))
			if err != nil {
				return nil, err
			}
			strs = append(strs, string(s))
		}
		return TXT{Strings: strs}, nil
	case TypeSOA:
		var s SOA
		var err error
		if s.MName, err = p.name(); err != nil {
			return nil, err
		}
		if s.RName, err = p.name(); err != nil {
			return nil, err
		}
		vals := [5]*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum}
		for _, v := range vals {
			if *v, err = p.uint32(); err != nil {
				return nil, err
			}
		}
		return internSOA(s), nil
	case TypeDS:
		var d DS
		var err error
		if d.KeyTag, err = p.uint16(); err != nil {
			return nil, err
		}
		if d.Algorithm, err = p.byte(); err != nil {
			return nil, err
		}
		if d.DigestType, err = p.byte(); err != nil {
			return nil, err
		}
		rest, err := p.bytes(end - p.off)
		if err != nil {
			return nil, err
		}
		d.Digest = append([]byte(nil), rest...)
		return d, nil
	case TypeOPT:
		rest, err := p.bytes(end - p.off)
		if err != nil {
			return nil, err
		}
		return OPT{Options: append([]byte(nil), rest...)}, nil
	case TypeRRSIG:
		return p.decodeRRSIG(end)
	case TypeDNSKEY:
		return p.decodeDNSKEY(end)
	case TypeNSEC:
		return p.decodeNSEC(end)
	default:
		rest, err := p.bytes(end - p.off)
		if err != nil {
			return nil, err
		}
		return Unknown{Type: t, Data: append([]byte(nil), rest...)}, nil
	}
}

// rdataIntern canonicalizes decoded rdata values of the hot comparable
// types (A, AAAA, NS, CNAME, SOA). Returning a cached interface value
// skips the heap boxing every decode would otherwise pay; the tables are
// typed (one map per rdata kind) so a cache hit boxes nothing — a
// map[any] key would re-box the struct just to perform the lookup. Like
// the name table each map is capped so unbounded-value workloads degrade
// to per-record boxing instead of unbounded growth.
const rdataInternCap = 1 << 16

var rdataIntern struct {
	mu    sync.Mutex
	a     map[A]RData
	aaaa  map[AAAA]RData
	ns    map[NS]RData
	cname map[CNAME]RData
	soa   map[SOA]RData
}

func internA(v A) RData {
	ri := &rdataIntern
	ri.mu.Lock()
	d, ok := ri.a[v]
	if !ok {
		d = v
		if ri.a == nil {
			ri.a = make(map[A]RData, 256)
		}
		if len(ri.a) < rdataInternCap {
			ri.a[v] = d
		}
	}
	ri.mu.Unlock()
	return d
}

func internAAAA(v AAAA) RData {
	ri := &rdataIntern
	ri.mu.Lock()
	d, ok := ri.aaaa[v]
	if !ok {
		d = v
		if ri.aaaa == nil {
			ri.aaaa = make(map[AAAA]RData, 256)
		}
		if len(ri.aaaa) < rdataInternCap {
			ri.aaaa[v] = d
		}
	}
	ri.mu.Unlock()
	return d
}

func internNS(v NS) RData {
	ri := &rdataIntern
	ri.mu.Lock()
	d, ok := ri.ns[v]
	if !ok {
		d = v
		if ri.ns == nil {
			ri.ns = make(map[NS]RData, 256)
		}
		if len(ri.ns) < rdataInternCap {
			ri.ns[v] = d
		}
	}
	ri.mu.Unlock()
	return d
}

func internCNAME(v CNAME) RData {
	ri := &rdataIntern
	ri.mu.Lock()
	d, ok := ri.cname[v]
	if !ok {
		d = v
		if ri.cname == nil {
			ri.cname = make(map[CNAME]RData, 256)
		}
		if len(ri.cname) < rdataInternCap {
			ri.cname[v] = d
		}
	}
	ri.mu.Unlock()
	return d
}

func internSOA(v SOA) RData {
	ri := &rdataIntern
	ri.mu.Lock()
	d, ok := ri.soa[v]
	if !ok {
		d = v
		if ri.soa == nil {
			ri.soa = make(map[SOA]RData, 256)
		}
		if len(ri.soa) < rdataInternCap {
			ri.soa[v] = d
		}
	}
	ri.mu.Unlock()
	return d
}
