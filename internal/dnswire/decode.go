package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Parsing errors.
var (
	ErrTruncatedMessage = errors.New("dnswire: message truncated")
	ErrBadPointer       = errors.New("dnswire: bad compression pointer")
	ErrTrailingGarbage  = errors.New("dnswire: trailing bytes after message")
)

type parser struct {
	data []byte
	off  int
}

func (p *parser) need(n int) error {
	if p.off+n > len(p.data) {
		return ErrTruncatedMessage
	}
	return nil
}

func (p *parser) byte() (uint8, error) {
	if err := p.need(1); err != nil {
		return 0, err
	}
	v := p.data[p.off]
	p.off++
	return v, nil
}

func (p *parser) uint16() (uint16, error) {
	if err := p.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(p.data[p.off:])
	p.off += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if err := p.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(p.data[p.off:])
	p.off += 4
	return v, nil
}

func (p *parser) bytes(n int) ([]byte, error) {
	// n can go negative when a decoder computes "rest of rdata" after a
	// compressed name already overran the claimed rdata length.
	if n < 0 {
		return nil, ErrTruncatedMessage
	}
	if err := p.need(n); err != nil {
		return nil, err
	}
	v := p.data[p.off : p.off+n]
	p.off += n
	return v, nil
}

// name reads a possibly-compressed domain name starting at the current
// offset, following compression pointers. Pointer chains are bounded to
// prevent loops.
func (p *parser) name() (string, error) {
	n, next, err := readName(p.data, p.off)
	if err != nil {
		return "", err
	}
	p.off = next
	return n, nil
}

// readName decodes a name at off in data, returning the canonical name and
// the offset just past the name's in-place encoding. The presentation form
// is assembled (and lowercased) in a stack buffer, so decoding costs one
// string allocation per name regardless of label count.
func readName(data []byte, off int) (string, int, error) {
	var buf [MaxNameLen]byte // wire length caps the presentation length too
	name := buf[:0]
	ptrBudget := 64 // far more than any legitimate message needs
	next := -1      // offset after the first pointer, i.e. where parsing resumes
	wireLen := 0
	for {
		if off >= len(data) {
			return "", 0, ErrTruncatedMessage
		}
		l := int(data[off])
		switch {
		case l == 0:
			if next < 0 {
				next = off + 1
			}
			if len(name) == 0 {
				return ".", next, nil
			}
			return string(name), next, nil
		case l&0xC0 == 0xC0:
			if off+1 >= len(data) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(l&0x3F)<<8 | int(data[off+1])
			if ptr >= off {
				// Forward (or self) pointers cannot occur in well-formed
				// messages and could loop.
				return "", 0, ErrBadPointer
			}
			if next < 0 {
				next = off + 2
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrBadPointer
			}
			off = ptr
		case l&0xC0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type 0x%x", ErrBadName, l&0xC0)
		default:
			if off+1+l > len(data) {
				return "", 0, ErrTruncatedMessage
			}
			wireLen += 1 + l
			if wireLen+1 > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			for _, c := range data[off+1 : off+1+l] {
				if 'A' <= c && c <= 'Z' {
					c += 'a' - 'A'
				}
				name = append(name, c)
			}
			name = append(name, '.')
			off += 1 + l
		}
	}
}

// Unpack parses a complete DNS message from wire format.
func Unpack(data []byte) (*Message, error) {
	p := &parser{data: data}
	var m Message
	id, err := p.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := p.uint16()
	if err != nil {
		return nil, err
	}
	m.ID = id
	m.Response = flags&(1<<15) != 0
	m.Opcode = Opcode(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.AuthenticData = flags&(1<<5) != 0
	m.CheckingDisabled = flags&(1<<4) != 0
	m.RCode = RCode(flags & 0xf)

	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = p.uint16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		q, err := p.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	secs := []*[]RR{&m.Answers, &m.Authorities, &m.Additionals}
	secNames := []string{"answer", "authority", "additional"}
	for s, sec := range secs {
		for i := 0; i < int(counts[s+1]); i++ {
			rr, err := p.rr()
			if err != nil {
				return nil, fmt.Errorf("%s %d: %w", secNames[s], i, err)
			}
			*sec = append(*sec, rr)
		}
	}
	if p.off != len(data) {
		return nil, ErrTrailingGarbage
	}
	return &m, nil
}

func (p *parser) question() (Question, error) {
	var q Question
	name, err := p.name()
	if err != nil {
		return q, err
	}
	t, err := p.uint16()
	if err != nil {
		return q, err
	}
	c, err := p.uint16()
	if err != nil {
		return q, err
	}
	q.Name, q.Type, q.Class = name, Type(t), Class(c)
	return q, nil
}

func (p *parser) rr() (RR, error) {
	var rr RR
	name, err := p.name()
	if err != nil {
		return rr, err
	}
	t16, err := p.uint16()
	if err != nil {
		return rr, err
	}
	c, err := p.uint16()
	if err != nil {
		return rr, err
	}
	ttl, err := p.uint32()
	if err != nil {
		return rr, err
	}
	rdlen, err := p.uint16()
	if err != nil {
		return rr, err
	}
	if err := p.need(int(rdlen)); err != nil {
		return rr, err
	}
	rdataEnd := p.off + int(rdlen)
	data, err := p.rdata(Type(t16), rdataEnd)
	if err != nil {
		return rr, err
	}
	if p.off != rdataEnd {
		return rr, fmt.Errorf("dnswire: rdata length mismatch for %s", Type(t16))
	}
	rr.Name, rr.Class, rr.TTL, rr.Data = name, Class(c), ttl, data
	return rr, nil
}

func (p *parser) rdata(t Type, end int) (RData, error) {
	switch t {
	case TypeA:
		b, err := p.bytes(4)
		if err != nil {
			return nil, err
		}
		return A{Addr: netip.AddrFrom4([4]byte(b))}, nil
	case TypeAAAA:
		b, err := p.bytes(16)
		if err != nil {
			return nil, err
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(b))}, nil
	case TypeNS:
		h, err := p.name()
		return NS{Host: h}, err
	case TypeCNAME:
		h, err := p.name()
		return CNAME{Target: h}, err
	case TypePTR:
		h, err := p.name()
		return PTR{Target: h}, err
	case TypeMX:
		pref, err := p.uint16()
		if err != nil {
			return nil, err
		}
		h, err := p.name()
		return MX{Pref: pref, Host: h}, err
	case TypeTXT:
		var strs []string
		for p.off < end {
			l, err := p.byte()
			if err != nil {
				return nil, err
			}
			s, err := p.bytes(int(l))
			if err != nil {
				return nil, err
			}
			strs = append(strs, string(s))
		}
		return TXT{Strings: strs}, nil
	case TypeSOA:
		var s SOA
		var err error
		if s.MName, err = p.name(); err != nil {
			return nil, err
		}
		if s.RName, err = p.name(); err != nil {
			return nil, err
		}
		vals := []*uint32{&s.Serial, &s.Refresh, &s.Retry, &s.Expire, &s.Minimum}
		for _, v := range vals {
			if *v, err = p.uint32(); err != nil {
				return nil, err
			}
		}
		return s, nil
	case TypeDS:
		var d DS
		var err error
		if d.KeyTag, err = p.uint16(); err != nil {
			return nil, err
		}
		if d.Algorithm, err = p.byte(); err != nil {
			return nil, err
		}
		if d.DigestType, err = p.byte(); err != nil {
			return nil, err
		}
		rest, err := p.bytes(end - p.off)
		if err != nil {
			return nil, err
		}
		d.Digest = append([]byte(nil), rest...)
		return d, nil
	case TypeOPT:
		rest, err := p.bytes(end - p.off)
		if err != nil {
			return nil, err
		}
		return OPT{Options: append([]byte(nil), rest...)}, nil
	case TypeRRSIG:
		return p.decodeRRSIG(end)
	case TypeDNSKEY:
		return p.decodeDNSKEY(end)
	case TypeNSEC:
		return p.decodeNSEC(end)
	default:
		rest, err := p.bytes(end - p.off)
		if err != nil {
			return nil, err
		}
		return Unknown{Type: t, Data: append([]byte(nil), rest...)}, nil
	}
}
