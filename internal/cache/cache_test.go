package cache

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
)

var epoch = time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)

func rrA(name string, ttl uint32, ip string) dnswire.RR {
	return dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: ttl,
		Data: dnswire.A{Addr: dnswire.MustAddr(ip)}}
}

func keyA(name string) Key { return Key{Name: name, Type: dnswire.TypeA} }

func TestGetMissThenHit(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	k := keyA("a.example.nl.")
	if v := c.Get(k, 0); v.Hit {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	v := c.Get(k, 0)
	if !v.Hit || len(v.Records) != 1 {
		t.Fatalf("view = %+v", v)
	}
	if v.Records[0].TTL != 300 {
		t.Errorf("TTL = %d, want 300", v.Records[0].TTL)
	}
}

func TestTTLDecrementsAndExpires(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	k := keyA("a.example.nl.")
	c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	clk.RunFor(100 * time.Second)
	if v := c.Get(k, 0); !v.Hit || v.Records[0].TTL != 200 {
		t.Fatalf("after 100s: %+v", v)
	}
	clk.RunFor(200 * time.Second)
	if v := c.Get(k, 0); v.Hit {
		t.Error("hit at exact expiry")
	}
}

func TestTTLCapAndFloor(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{MaxTTL: 60 * time.Second, MinTTL: 10 * time.Second})
	kLong := keyA("long.example.nl.")
	c.Put(kLong, Entry{Records: []dnswire.RR{rrA("long.example.nl.", 86400, "10.0.0.1")}, Rank: RankAnswer}, 0)
	if v := c.Get(kLong, 0); v.Records[0].TTL != 60 {
		t.Errorf("capped TTL = %d, want 60", v.Records[0].TTL)
	}
	kShort := keyA("short.example.nl.")
	c.Put(kShort, Entry{Records: []dnswire.RR{rrA("short.example.nl.", 1, "10.0.0.2")}, Rank: RankAnswer}, 0)
	if v := c.Get(kShort, 0); v.Records[0].TTL != 10 {
		t.Errorf("floored TTL = %d, want 10", v.Records[0].TTL)
	}
}

func TestRRSetUsesMinimumTTL(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	k := keyA("multi.example.nl.")
	c.Put(k, Entry{Records: []dnswire.RR{
		rrA("multi.example.nl.", 300, "10.0.0.1"),
		rrA("multi.example.nl.", 100, "10.0.0.2"),
	}, Rank: RankAnswer}, 0)
	clk.RunFor(150 * time.Second)
	if v := c.Get(k, 0); v.Hit {
		t.Error("RRset should expire at its minimum TTL")
	}
}

func TestCredibilityRanking(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	k := keyA("ns1.example.nl.")
	// Glue arrives first with a long TTL (parent side, Appendix A).
	c.Put(k, Entry{Records: []dnswire.RR{rrA("ns1.example.nl.", 172800, "10.0.0.1")}, Rank: RankAdditional}, 0)
	// Authoritative answer with the child's shorter TTL replaces it.
	c.Put(k, Entry{Records: []dnswire.RR{rrA("ns1.example.nl.", 3600, "10.0.0.1")}, Rank: RankAnswer}, 0)
	if v := c.Get(k, 0); v.Records[0].TTL != 3600 || v.Rank != RankAnswer {
		t.Fatalf("authoritative answer did not replace glue: %+v", v)
	}
	// Later glue must not clobber the authoritative answer.
	c.Put(k, Entry{Records: []dnswire.RR{rrA("ns1.example.nl.", 172800, "10.0.0.9")}, Rank: RankAdditional}, 0)
	v := c.Get(k, 0)
	if v.Rank != RankAnswer || v.Records[0].TTL > 3600 {
		t.Fatalf("glue overwrote authoritative data: %+v", v)
	}
	// But once expired, lower-rank data may take over.
	clk.RunFor(3601 * time.Second)
	c.Put(k, Entry{Records: []dnswire.RR{rrA("ns1.example.nl.", 172800, "10.0.0.9")}, Rank: RankAdditional}, 0)
	if v := c.Get(k, 0); !v.Hit || v.Rank != RankAdditional {
		t.Fatalf("glue rejected after expiry: %+v", v)
	}
}

func TestNegativeCaching(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	soa := dnswire.RR{Name: "example.nl.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.SOA{MName: "ns1.example.nl.", RName: "h.example.nl.", Minimum: 60}}
	k := Key{Name: "nope.example.nl.", Type: dnswire.TypeAAAA}
	c.Put(k, Entry{Negative: true, NXDomain: true, SOA: soa, Rank: RankAnswer}, 0)
	v := c.Get(k, 0)
	if !v.Hit || !v.Negative || !v.NXDomain {
		t.Fatalf("view = %+v", v)
	}
	if v.SOA.TTL != 60 {
		t.Errorf("negative TTL = %d, want 60", v.SOA.TTL)
	}
	clk.RunFor(61 * time.Second)
	if v := c.Get(k, 0); v.Hit {
		t.Error("negative entry outlived SOA minimum")
	}
}

func TestNegativeTTLUsesSOATTLWhenSmaller(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	soa := dnswire.RR{Name: "example.nl.", Class: dnswire.ClassIN, TTL: 30,
		Data: dnswire.SOA{Minimum: 3600}}
	k := Key{Name: "nope.example.nl.", Type: dnswire.TypeA}
	c.Put(k, Entry{Negative: true, SOA: soa, Rank: RankAnswer}, 0)
	if v := c.Get(k, 0); v.SOA.TTL != 30 {
		t.Errorf("negative TTL = %d, want 30 (min of SOA TTL and Minimum)", v.SOA.TTL)
	}
}

func TestServeStale(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{ServeStale: true, StaleWindow: 30 * time.Minute})
	k := keyA("a.example.nl.")
	c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 60, "10.0.0.1")}, Rank: RankAnswer}, 0)
	clk.RunFor(10 * time.Minute)
	if v := c.Get(k, 0); v.Hit {
		t.Fatal("plain Get returned expired data")
	}
	v := c.GetStale(k, 0)
	if !v.Hit || !v.Stale {
		t.Fatalf("GetStale = %+v", v)
	}
	if v.Records[0].TTL != 0 {
		t.Errorf("stale TTL = %d, want 0 (serve-stale draft)", v.Records[0].TTL)
	}
	clk.RunFor(25 * time.Minute) // beyond the stale window
	if v := c.GetStale(k, 0); v.Hit {
		t.Error("stale data served past the window")
	}
}

func TestServeStaleDisabled(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	k := keyA("a.example.nl.")
	c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 60, "10.0.0.1")}, Rank: RankAnswer}, 0)
	clk.RunFor(2 * time.Minute)
	if v := c.GetStale(k, 0); v.Hit {
		t.Error("GetStale returned data with serve-stale disabled")
	}
}

func TestLRUCapacity(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{Capacity: 2})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("h%d.example.nl.", i)
		c.Put(keyA(name), Entry{Records: []dnswire.RR{rrA(name, 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if v := c.Get(keyA("h0.example.nl."), 0); v.Hit {
		t.Error("oldest entry not evicted")
	}
	// Touching h1 makes h2 the eviction candidate.
	c.Get(keyA("h1.example.nl."), 0)
	c.Put(keyA("h3.example.nl."), Entry{Records: []dnswire.RR{rrA("h3.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	if v := c.Get(keyA("h1.example.nl."), 0); !v.Hit {
		t.Error("recently used entry evicted")
	}
	if v := c.Get(keyA("h2.example.nl."), 0); v.Hit {
		t.Error("LRU entry survived")
	}
}

func TestShardsAreIndependent(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{Shards: 4})
	if c.Shards() != 4 {
		t.Fatalf("Shards = %d", c.Shards())
	}
	k := keyA("a.example.nl.")
	c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, 1)
	if v := c.Get(k, 1); !v.Hit {
		t.Error("miss on the shard that stored")
	}
	for _, other := range []int{0, 2, 3} {
		if v := c.Get(k, other); v.Hit {
			t.Errorf("shard %d shares data with shard 1", other)
		}
	}
	// Same shard modulo count.
	if v := c.Get(k, 5); !v.Hit {
		t.Error("shard hint 5 should map to shard 1")
	}
	c.FlushShard(1)
	if v := c.Get(k, 1); v.Hit {
		t.Error("FlushShard left data")
	}
}

func TestNegativeShardHints(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{Shards: 4})
	k := keyA("a.example.nl.")
	// -hint overflows for math.MinInt; every hint must still map into range.
	for _, hint := range []int{-1, -4, -5, math.MinInt, math.MinInt + 1, math.MaxInt} {
		c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, hint)
		if v := c.Get(k, hint); !v.Hit {
			t.Errorf("hint %d: stored entry not found", hint)
		}
		c.FlushShard(hint)
		if v := c.Get(k, hint); v.Hit {
			t.Errorf("hint %d: FlushShard left data", hint)
		}
	}
	// Hints congruent mod Shards address the same backend: -1 ≡ 3 (mod 4).
	c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, -1)
	if v := c.Get(k, 3); !v.Hit {
		t.Error("hint -1 and 3 map to different shards")
	}
}

func TestPeek(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{Capacity: 2})
	k := keyA("a.example.nl.")
	if v := c.Peek(k, 0); v.Hit {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, Entry{Records: []dnswire.RR{rrA("a.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	clk.RunFor(100 * time.Second)
	v := c.Peek(k, 0)
	if !v.Hit || v.Rank != RankAnswer || len(v.Records) != 1 {
		t.Fatalf("view = %+v", v)
	}
	if v.Records[0].TTL != 300 {
		t.Errorf("Peek TTL = %d, want the stored 300 (no decrement)", v.Records[0].TTL)
	}
	if v.Age != 100*time.Second {
		t.Errorf("Age = %v, want 100s", v.Age)
	}
	// Get still decrements; Peek aliasing must not have corrupted storage.
	if g := c.Get(k, 0); g.Records[0].TTL != 200 {
		t.Errorf("Get after Peek TTL = %d, want 200", g.Records[0].TTL)
	}
	clk.RunFor(200 * time.Second)
	if v := c.Peek(k, 0); v.Hit {
		t.Error("Peek returned expired data")
	}

	// Peek counts as use for the LRU, exactly like Get.
	clk2 := clock.NewVirtual(epoch)
	c2 := New(clk2, Config{Capacity: 2})
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("h%d.example.nl.", i)
		c2.Put(keyA(name), Entry{Records: []dnswire.RR{rrA(name, 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	}
	c2.Peek(keyA("h0.example.nl."), 0) // touch h0: h1 becomes eviction candidate
	c2.Put(keyA("h2.example.nl."), Entry{Records: []dnswire.RR{rrA("h2.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	if v := c2.Peek(keyA("h0.example.nl."), 0); !v.Hit {
		t.Error("Peek did not refresh LRU position")
	}
	if v := c2.Peek(keyA("h1.example.nl."), 0); v.Hit {
		t.Error("h1 should have been evicted")
	}
}

func TestFlush(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{Shards: 2})
	c.Put(keyA("a."), Entry{Records: []dnswire.RR{rrA("a.", 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	c.Put(keyA("b."), Entry{Records: []dnswire.RR{rrA("b.", 300, "10.0.0.1")}, Rank: RankAnswer}, 1)
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after Flush = %d", c.Len())
	}
}

func TestDump(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	c.Put(keyA("a.example.nl."), Entry{Records: []dnswire.RR{rrA("a.example.nl.", 300, "10.0.0.1")}, Rank: RankAnswer}, 0)
	clk.RunFor(5 * time.Second)
	dump := c.Dump(0)
	if len(dump) != 1 || dump[0].TTL != 295 {
		t.Fatalf("dump = %v", dump)
	}
}

func TestPutEmptyPositiveIsNoop(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{})
	c.Put(keyA("a."), Entry{Rank: RankAnswer}, 0)
	if c.Len() != 0 {
		t.Error("empty positive entry stored")
	}
}

// TestQuickTTLNeverExceedsOriginal: property — a cached record's returned
// TTL is never larger than what was stored (after cap/floor), and never
// negative.
func TestQuickTTLNeverExceedsOriginal(t *testing.T) {
	f := func(ttl uint32, advance uint16) bool {
		ttl %= 100000
		clk := clock.NewVirtual(epoch)
		c := New(clk, Config{})
		k := keyA("q.example.nl.")
		c.Put(k, Entry{Records: []dnswire.RR{rrA("q.example.nl.", ttl, "10.0.0.1")}, Rank: RankAnswer}, 0)
		clk.RunFor(time.Duration(advance) * time.Second)
		v := c.Get(k, 0)
		if !v.Hit {
			return uint32(advance) >= ttl
		}
		return v.Records[0].TTL <= ttl && uint32(advance) < ttl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
