// Package cache implements the resolver-side DNS cache: TTL-honoring
// storage with optional TTL caps/floors (the rewriting §3.4 of the paper
// observes in the wild), RFC 2308 negative caching, RFC 2181 credibility
// ranking (authoritative answers override glue — Appendix A), serve-stale
// (draft-tale-dnsop-serve-stale, §5.3), LRU capacity limits, and cache
// fragmentation: N independent shards emulating a load-balanced resolver
// farm whose backends do not share a cache (§3.5).
package cache

import (
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Rank is the RFC 2181 §5.4.1 credibility of cached data. Higher ranks
// replace lower ones; lower-ranked data never overwrites fresher
// higher-ranked data.
type Rank int

// Credibility ranks, weakest first.
const (
	// RankAdditional covers glue learned from additional sections.
	RankAdditional Rank = iota + 1
	// RankAuthority covers NS sets learned from referral authority
	// sections.
	RankAuthority
	// RankAnswer covers records from the answer section of an
	// authoritative reply.
	RankAnswer
)

// Key identifies a cache entry. Class is implicitly IN.
type Key struct {
	Name string
	Type dnswire.Type
}

// Entry is what Put stores.
type Entry struct {
	// Records are the RRset with the TTLs as received.
	Records []dnswire.RR
	// Rank is the credibility of the data.
	Rank Rank
	// Negative marks an NXDOMAIN or NODATA entry; SOA carries the
	// authority SOA whose Minimum bounds the negative TTL.
	Negative bool
	NXDomain bool
	SOA      dnswire.RR
}

// View is the result of a lookup.
type View struct {
	// Hit reports whether usable data was found.
	Hit bool
	// Stale is set when the data is past its TTL and returned only
	// because serve-stale was requested. Stale records carry TTL 0, as in
	// the serve-stale draft (the paper observed exactly this, §5.3).
	Stale bool
	// Records hold the RRset with TTLs decremented to the remaining
	// lifetime.
	Records  []dnswire.RR
	Rank     Rank
	Negative bool
	NXDomain bool
	SOA      dnswire.RR
	// Age is how long ago the entry was stored.
	Age time.Duration
}

// Config tunes a Cache. The zero value means: unlimited capacity, no TTL
// rewriting, 1 shard, no serve-stale.
type Config struct {
	// Capacity limits entries per shard; <= 0 is unlimited.
	Capacity int
	// MinTTL raises TTLs below it (a floor some resolvers configure).
	MinTTL time.Duration
	// MaxTTL caps TTLs (BIND defaults to 7 d, Unbound to 1 d; EC2's
	// resolver caps at 60 s).
	MaxTTL time.Duration
	// NegTTLCap caps negative TTLs; 0 defaults to the SOA Minimum alone.
	NegTTLCap time.Duration
	// ServeStale allows GetStale to return expired entries.
	ServeStale bool
	// StaleWindow bounds how long past expiry an entry may be served
	// stale; 0 with ServeStale means a 1-hour default.
	StaleWindow time.Duration
	// Shards is the number of independent backend caches; queries carry a
	// shard hint. <= 1 means one shared cache.
	Shards int
}

const defaultStaleWindow = time.Hour

// Cache is a sharded DNS cache. It is not safe for concurrent use; the
// simulation is single-threaded and real-server callers wrap it in a lock.
type Cache struct {
	cfg    Config
	clk    clock.Clock
	shards []shard
	shard0 [1]shard // inline backing for the common single-shard case
	trace  *trace.Buffer
	m      counters
}

// SetTrace enables lookup-outcome tracing (nil disables). Only Get and
// GetStale emit; Peek stays uninstrumented — it serves read-only internal
// scans (zone-server lookups) whose volume would drown the trace.
func (c *Cache) SetTrace(tr *trace.Buffer) { c.trace = tr }

// counters instruments the lookup and store paths. At most one counter is
// touched per call, and hits/stale/negative/misses partition the Get
// outcomes, so hit-rate arithmetic needs no cross-referencing.
type counters struct {
	hits         metrics.Counter // fresh positive Get/GetStale hits
	staleHits    metrics.Counter // expired entries served via serve-stale
	negativeHits metrics.Counter // fresh negative (NXDOMAIN/NODATA) hits
	misses       metrics.Counter // Get/GetStale finding nothing usable
	peekHits     metrics.Counter
	peekMisses   metrics.Counter
	puts         metrics.Counter
	evictions    metrics.Counter // LRU capacity evictions
}

// CollectMetrics folds the cache's counters into a metrics scope.
func (c *Cache) CollectMetrics(s *metrics.Scope) {
	s.Counter("hits").Add(c.m.hits.Value())
	s.Counter("stale_hits").Add(c.m.staleHits.Value())
	s.Counter("negative_hits").Add(c.m.negativeHits.Value())
	s.Counter("misses").Add(c.m.misses.Value())
	s.Counter("peek_hits").Add(c.m.peekHits.Value())
	s.Counter("peek_misses").Add(c.m.peekMisses.Value())
	s.Counter("puts").Add(c.m.puts.Value())
	s.Counter("evictions").Add(c.m.evictions.Value())
}

// shard is a single backend cache. The zero value is empty and ready:
// entries is allocated on first Put, so idle shards stay allocation-free.
// The LRU list is intrusive — cached nodes carry their own prev/next
// links — so a store costs one allocation (the node), not two.
type shard struct {
	entries map[Key]*cached
	// head/tail of the recency list; head = most recent.
	head, tail *cached
	count      int
	// Node arena: fresh nodes come from slab chunks and evicted nodes are
	// recycled through free (linked via next), so a steady-state shard
	// allocates one chunk per slabChunk insertions instead of one node
	// per Put.
	slab []cached
	used int
	free *cached
}

// slabChunk is the node-arena growth quantum.
const slabChunk = 32

func (sh *shard) newNode() *cached {
	if n := sh.free; n != nil {
		sh.free = n.next
		*n = cached{}
		return n
	}
	if sh.used == len(sh.slab) {
		sh.slab = make([]cached, slabChunk)
		sh.used = 0
	}
	n := &sh.slab[sh.used]
	sh.used++
	return n
}

func (sh *shard) freeNode(n *cached) {
	*n = cached{next: sh.free}
	sh.free = n
}

type cached struct {
	key        Key
	entry      Entry
	storedAt   time.Time
	expires    time.Time
	prev, next *cached
}

// moveToFront makes item the most recently used node.
func (sh *shard) moveToFront(item *cached) {
	if sh.head == item {
		return
	}
	sh.unlink(item)
	sh.pushFront(item)
}

func (sh *shard) pushFront(item *cached) {
	item.prev = nil
	item.next = sh.head
	if sh.head != nil {
		sh.head.prev = item
	}
	sh.head = item
	if sh.tail == nil {
		sh.tail = item
	}
	sh.count++
}

func (sh *shard) unlink(item *cached) {
	if item.prev != nil {
		item.prev.next = item.next
	} else {
		sh.head = item.next
	}
	if item.next != nil {
		item.next.prev = item.prev
	} else {
		sh.tail = item.prev
	}
	item.prev, item.next = nil, nil
	sh.count--
}

// New creates a cache on clk with the given configuration. Shards are
// value-typed and lazily initialized: an idle shard (most of a large
// population's caches, most of the time) costs its struct header and
// nothing else until the first Put.
func New(clk clock.Clock, cfg Config) *Cache {
	c := &Cache{}
	c.Init(clk, cfg)
	return c
}

// Init prepares a Cache in place (the embedded-by-value twin of New, for
// callers that arena-allocate the enclosing struct). Single-shard caches
// (the overwhelmingly common shape) use the inline shard0 buffer and
// allocate nothing.
func (c *Cache) Init(clk clock.Clock, cfg Config) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	*c = Cache{cfg: cfg, clk: clk}
	if n == 1 {
		c.shards = c.shard0[:]
	} else {
		c.shards = make([]shard, n)
	}
}

// Shards returns the number of independent shards.
func (c *Cache) Shards() int { return len(c.shards) }

// shardIndex maps a possibly-negative hint onto [0, n). Negating the hint
// would overflow for math.MinInt (-MinInt == MinInt), so the reduction is
// done with a Euclidean-style modulo instead.
func shardIndex(hint, n int) int {
	i := hint % n
	if i < 0 {
		i += n
	}
	return i
}

func (c *Cache) shard(hint int) *shard {
	return &c.shards[shardIndex(hint, len(c.shards))]
}

// effectiveTTL applies the configured floor/cap to a record TTL.
func (c *Cache) effectiveTTL(ttl time.Duration) time.Duration {
	if c.cfg.MaxTTL > 0 && ttl > c.cfg.MaxTTL {
		ttl = c.cfg.MaxTTL
	}
	if c.cfg.MinTTL > 0 && ttl < c.cfg.MinTTL {
		ttl = c.cfg.MinTTL
	}
	return ttl
}

// Put stores e under key in the hinted shard. Data of lower rank does not
// replace unexpired data of higher rank.
func (c *Cache) Put(key Key, e Entry, shardHint int) {
	key.Name = dnswire.CanonicalName(key.Name)
	sh := c.shard(shardHint)
	if sh.entries == nil {
		sh.entries = make(map[Key]*cached)
	}
	now := c.clk.Now()

	c.m.puts.Inc()
	item, exists := sh.entries[key]
	if exists {
		if item.entry.Rank > e.Rank && item.expires.After(now) {
			return
		}
	}

	var ttl time.Duration
	if e.Negative {
		minimum := time.Duration(0)
		if soa, ok := e.SOA.Data.(dnswire.SOA); ok {
			minimum = time.Duration(soa.Minimum) * time.Second
			if soaTTL := time.Duration(e.SOA.TTL) * time.Second; soaTTL < minimum {
				minimum = soaTTL
			}
		}
		ttl = minimum
		if c.cfg.NegTTLCap > 0 && ttl > c.cfg.NegTTLCap {
			ttl = c.cfg.NegTTLCap
		}
	} else {
		if len(e.Records) == 0 {
			return
		}
		min := time.Duration(e.Records[0].TTL) * time.Second
		for _, rr := range e.Records[1:] {
			if d := time.Duration(rr.TTL) * time.Second; d < min {
				min = d
			}
		}
		ttl = c.effectiveTTL(min)
	}

	if exists {
		// Overwrite the resident struct rather than allocating a fresh one.
		// Callers aliasing the old Records via Peek keep their (now old)
		// slice; only the header in the cache is replaced.
		item.entry, item.storedAt, item.expires = e, now, now.Add(ttl)
		sh.moveToFront(item)
		return
	}
	item = sh.newNode()
	item.key, item.entry, item.storedAt, item.expires = key, e, now, now.Add(ttl)
	sh.entries[key] = item
	sh.pushFront(item)
	if c.cfg.Capacity > 0 {
		for sh.count > c.cfg.Capacity {
			oldest := sh.tail
			sh.unlink(oldest)
			delete(sh.entries, oldest.key)
			sh.freeNode(oldest)
			c.m.evictions.Inc()
		}
	}
}

// Get returns fresh cached data for key from the hinted shard.
func (c *Cache) Get(key Key, shardHint int) View {
	return c.get(key, shardHint, false)
}

// Peek is Get without the per-hit RRset clone: View.Records aliases the
// cache-owned slice with TTLs as stored, not decremented to the remaining
// lifetime. Callers must treat the records as read-only and must not retain
// them past a subsequent Put. Lookup semantics — freshness, canonicalization,
// and the LRU touch — are identical to Get, so switching a read-only call
// site between the two never changes cache behavior.
func (c *Cache) Peek(key Key, shardHint int) View {
	key.Name = dnswire.CanonicalName(key.Name)
	sh := c.shard(shardHint)
	item, ok := sh.entries[key]
	if !ok {
		c.m.peekMisses.Inc()
		return View{}
	}
	now := c.clk.Now()
	if !item.expires.After(now) {
		c.m.peekMisses.Inc()
		return View{}
	}
	c.m.peekHits.Inc()
	sh.moveToFront(item)
	return View{
		Hit:      true,
		Records:  item.entry.Records,
		Rank:     item.entry.Rank,
		Negative: item.entry.Negative,
		NXDomain: item.entry.NXDomain,
		SOA:      item.entry.SOA,
		Age:      now.Sub(item.storedAt),
	}
}

// GetStale is Get but, when the cache is configured for serve-stale, it
// may also return expired data (with TTL 0) within the stale window. Call
// it only after an upstream resolution attempt has failed.
//
// Boundary semantics (pinned by TestStaleWindowBoundary): an entry is
// stale the instant it expires — at now == expires, Get already misses —
// and the stale window is inclusive at its far edge: an entry exactly
// StaleWindow past expiry is still served (the cutoff test is
// `now - expires > window`, strictly greater). One instant later it is
// a miss.
func (c *Cache) GetStale(key Key, shardHint int) View {
	return c.get(key, shardHint, c.cfg.ServeStale)
}

func (c *Cache) get(key Key, shardHint int, allowStale bool) View {
	key.Name = dnswire.CanonicalName(key.Name)
	sh := c.shard(shardHint)
	item, ok := sh.entries[key]
	if !ok {
		c.m.misses.Inc()
		if tr := c.trace; tr != nil {
			tr.Emit(trace.Event{Type: trace.EvCacheMiss,
				Probe: trace.ProbeFromName(key.Name), Name: key.Name, A: uint32(key.Type)})
		}
		return View{}
	}
	now := c.clk.Now()
	remaining := item.expires.Sub(now)
	stale := remaining <= 0
	if stale {
		window := c.cfg.StaleWindow
		if window == 0 {
			window = defaultStaleWindow
		}
		if !allowStale || now.Sub(item.expires) > window {
			c.m.misses.Inc()
			if tr := c.trace; tr != nil {
				tr.Emit(trace.Event{Type: trace.EvCacheExpired,
					Probe: trace.ProbeFromName(key.Name), Name: key.Name, A: uint32(key.Type)})
			}
			return View{}
		}
		remaining = 0
	}
	switch {
	case stale:
		c.m.staleHits.Inc()
	case item.entry.Negative:
		c.m.negativeHits.Inc()
	default:
		c.m.hits.Inc()
	}
	if tr := c.trace; tr != nil {
		t := trace.EvCacheHit
		switch {
		case stale:
			t = trace.EvCacheStale
		case item.entry.Negative:
			t = trace.EvCacheNegHit
		}
		tr.Emit(trace.Event{Type: t,
			Probe: trace.ProbeFromName(key.Name), Name: key.Name, A: uint32(key.Type)})
	}
	sh.moveToFront(item)

	v := View{
		Hit:      true,
		Stale:    stale,
		Rank:     item.entry.Rank,
		Negative: item.entry.Negative,
		NXDomain: item.entry.NXDomain,
		Age:      now.Sub(item.storedAt),
	}
	secs := uint32(remaining / time.Second)
	if len(item.entry.Records) > 0 {
		v.Records = make([]dnswire.RR, len(item.entry.Records))
		copy(v.Records, item.entry.Records)
		for i := range v.Records {
			v.Records[i].TTL = secs
		}
	}
	if item.entry.Negative {
		v.SOA = item.entry.SOA
		v.SOA.TTL = secs
	}
	return v
}

// Flush empties every shard (an operator flush or a resolver restart,
// §3.1).
func (c *Cache) Flush() {
	for i := range c.shards {
		c.shards[i] = shard{}
	}
}

// FlushShard empties a single backend cache.
func (c *Cache) FlushShard(hint int) {
	c.shards[shardIndex(hint, len(c.shards))] = shard{}
}

// Len returns the total number of entries across shards, including expired
// ones not yet evicted.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		n += c.shards[i].count
	}
	return n
}

// Dump returns the fresh entries of the hinted shard, mirroring
// `rndc dumpdb` / `unbound-control dump_cache` (used for the Appendix A
// Listings 3–4 reproduction).
func (c *Cache) Dump(shardHint int) []dnswire.RR {
	sh := c.shard(shardHint)
	now := c.clk.Now()
	var out []dnswire.RR
	for _, item := range sh.entries {
		if !item.expires.After(now) || item.entry.Negative {
			continue
		}
		secs := uint32(item.expires.Sub(now) / time.Second)
		for _, rr := range item.entry.Records {
			rr.TTL = secs
			out = append(out, rr)
		}
	}
	return out
}
