package cache

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/dnswire"
)

// TestStaleWindowBoundary pins the serve-stale boundary semantics
// documented on GetStale: expiry itself is exclusive (an entry is stale
// the instant its TTL runs out), while the stale window's far edge is
// inclusive (an entry exactly StaleWindow past expiry is still served,
// one nanosecond later it is not).
func TestStaleWindowBoundary(t *testing.T) {
	const ttl = 60 // seconds
	window := 30 * time.Minute
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{ServeStale: true, StaleWindow: window})
	k := keyA("edge.example.nl.")
	c.Put(k, Entry{
		Records: []dnswire.RR{rrA("edge.example.nl.", ttl, "10.0.0.1")},
		Rank:    RankAnswer,
	}, 0)

	// One instant before expiry: a fresh hit for both paths.
	clk.RunFor(ttl*time.Second - time.Nanosecond)
	if v := c.Get(k, 0); !v.Hit || v.Stale {
		t.Fatalf("just before expiry: Get = %+v, want fresh hit", v)
	}

	// Exactly at expiry: already stale. Get misses, GetStale serves with
	// TTL 0.
	clk.RunFor(time.Nanosecond)
	if v := c.Get(k, 0); v.Hit {
		t.Fatalf("exactly at expiry: Get = %+v, want miss", v)
	}
	if v := c.GetStale(k, 0); !v.Hit || !v.Stale || v.Records[0].TTL != 0 {
		t.Fatalf("exactly at expiry: GetStale = %+v, want stale hit with TTL 0", v)
	}

	// Exactly StaleWindow past expiry: the window edge is inclusive.
	clk.RunFor(window)
	if v := c.GetStale(k, 0); !v.Hit || !v.Stale {
		t.Fatalf("exactly StaleWindow past expiry: GetStale = %+v, want stale hit", v)
	}

	// One instant beyond the window: a miss.
	clk.RunFor(time.Nanosecond)
	if v := c.GetStale(k, 0); v.Hit {
		t.Fatalf("past StaleWindow: GetStale = %+v, want miss", v)
	}
}

// TestStaleWindowDefault pins the same edge for the implicit one-hour
// default window (StaleWindow zero).
func TestStaleWindowDefault(t *testing.T) {
	clk := clock.NewVirtual(epoch)
	c := New(clk, Config{ServeStale: true})
	k := keyA("edge.example.nl.")
	c.Put(k, Entry{
		Records: []dnswire.RR{rrA("edge.example.nl.", 60, "10.0.0.1")},
		Rank:    RankAnswer,
	}, 0)
	clk.RunFor(60*time.Second + defaultStaleWindow)
	if v := c.GetStale(k, 0); !v.Hit || !v.Stale {
		t.Fatalf("exactly default window past expiry: GetStale = %+v, want stale hit", v)
	}
	clk.RunFor(time.Nanosecond)
	if v := c.GetStale(k, 0); v.Hit {
		t.Fatalf("past default window: GetStale = %+v, want miss", v)
	}
}
