// Benchmarks regenerating every table and figure of "When the Dike
// Breaks" at a reduced probe count (the cmd/dikes tool runs the same
// experiments at paper scale). Each benchmark prints the paper-style
// rows/series on its first iteration and reports headline numbers as
// custom metrics, so `go test -bench=. -benchmem` doubles as the full
// reproduction harness.
package dikes_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/clock"
	"repro/internal/dnswire"
	"repro/internal/parallel"
	"repro/internal/zone"

	dikes "repro"
)

// benchProbes scales the vantage-point fleet for benchmarks.
const benchProbes = 150

// printOnce emits the rendered table on the first iteration only.
func printOnce(b *testing.B, i int, title, body string) {
	b.Helper()
	if i == 0 {
		fmt.Printf("\n=== %s (%s) ===\n%s", title, b.Name(), body)
	}
}

// --- §3 caching baseline: Tables 1-3, Figures 3 and 13 ---

func runCachingTTL(seed int64, ttl uint32, interval time.Duration) *dikes.CachingResult {
	return dikes.RunCaching(dikes.CachingConfig{
		Probes: benchProbes, TTL: ttl, ProbeInterval: interval,
		Rounds: 6, Seed: seed,
	})
}

func BenchmarkTable1CachingBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := []*dikes.CachingResult{
			runCachingTTL(1, 60, 20*time.Minute),
			runCachingTTL(1, 1800, 20*time.Minute),
			runCachingTTL(1, 3600, 20*time.Minute),
			runCachingTTL(1, 86400, 20*time.Minute),
			runCachingTTL(1, 3600, 10*time.Minute),
		}
		printOnce(b, i, "Table 1: caching baseline populations", dikes.RenderTable1(results))
		b.ReportMetric(float64(results[2].Table1.VPs), "VPs")
	}
}

func BenchmarkTable2Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := []*dikes.CachingResult{
			runCachingTTL(1, 60, 20*time.Minute),
			runCachingTTL(1, 1800, 20*time.Minute),
			runCachingTTL(1, 3600, 20*time.Minute),
			runCachingTTL(1, 86400, 20*time.Minute),
		}
		printOnce(b, i, "Table 2: answer classification (AA/CC/AC/CA)", dikes.RenderTable2(results))
		b.ReportMetric(100*results[2].MissRate, "miss_pct_3600")
	}
}

func BenchmarkFigure3WarmCacheHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCachingTTL(1, 3600, 20*time.Minute)
		t2 := res.Table2
		body := fmt.Sprintf("AA=%d CC=%d AC=%d CA=%d  miss=%.1f%%\n",
			t2.AA, t2.CC, t2.AC, t2.CA, 100*res.MissRate)
		printOnce(b, i, "Figure 3: warm-cache classification histogram (TTL 3600)", body)
		b.ReportMetric(100*res.MissRate, "miss_pct")
	}
}

func BenchmarkTable3PublicResolvers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := []*dikes.CachingResult{
			runCachingTTL(1, 1800, 20*time.Minute),
			runCachingTTL(1, 3600, 20*time.Minute),
		}
		printOnce(b, i, "Table 3: AC answers by public resolver", dikes.RenderTable3(results))
		t3 := results[1].Table3
		if t3.ACAnswers > 0 {
			b.ReportMetric(100*float64(t3.PublicR1)/float64(t3.ACAnswers), "public_share_pct")
		}
	}
}

func BenchmarkFigure13AnswerTypeSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCachingTTL(1, 1800, 20*time.Minute)
		printOnce(b, i, "Figure 13: answer types over time (TTL 1800)",
			res.Fig13.Table([]string{"AA", "CC", "AC", "CA", "Warmup"}))
	}
}

// --- §4 production zones: Figures 4 and 5 ---

func BenchmarkFigure4NlInterarrival(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := dikes.RunNl(dikes.NlConfig{Resolvers: 2000, Seed: 4})
		var body string
		for _, p := range res.ECDF.Points(10) {
			body += fmt.Sprintf("  dt<=%6.0fs  cdf=%.2f\n", p.X, p.Y)
		}
		body += fmt.Sprintf("excluded(<10s)=%.1f%%  at-TTL=%.1f%%  early=%.1f%%\n",
			100*res.Analysis.ExcludedFrac, 100*res.FracAtTTL, 100*res.FracBelowTTL)
		printOnce(b, i, "Figure 4: ECDF of median inter-arrival at .nl", body)
		b.ReportMetric(100*res.FracBelowTTL, "early_requery_pct")
	}
}

func BenchmarkFigure5RootDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := dikes.RunRoot(dikes.RootConfig{Resolvers: 7000, Seed: 5})
		body := fmt.Sprintf("single-query recursives: %.1f%%  max queries: %d\n",
			100*res.FracSingleObserved, res.MaxObserved)
		lo := res.FracAtLeast5PerLetter[0]
		hi := res.FracAtLeast5PerLetter[len(res.FracAtLeast5PerLetter)-1]
		body += fmt.Sprintf("5+ queries per letter: friendliest=%.1f%% worst=%.1f%%\n", 100*lo, 100*hi)
		printOnce(b, i, "Figure 5: queries per recursive for nl DS at the roots", body)
		b.ReportMetric(100*res.FracSingleObserved, "single_query_pct")
	}
}

// BenchmarkFigure4FromSimulation derives the .nl inter-arrival analysis
// from a real simulated run (no synthesized trace): honoring resolvers
// re-fetch at the TTL, capped ones early, harvest bursts are excluded as
// closely-timed.
func BenchmarkFigure4FromSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := dikes.RunNlFromSim(dikes.NlSimConfig{Probes: benchProbes, Seed: 3})
		body := fmt.Sprintf("recursives=%d honoring=%.1f%% early=%.1f%% closely-timed=%.1f%% median=%.0fs\n",
			len(res.Analysis.Medians), 100*res.FracAtTTL, 100*res.FracBelowTTL,
			100*res.Analysis.ExcludedFrac, res.ECDF.InverseAt(0.5))
		printOnce(b, i, "Figure 4 (simulation-derived): NS re-fetch inter-arrivals", body)
		b.ReportMetric(100*res.FracAtTTL, "honoring_pct")
	}
}

// --- §5 DDoS emulations: Table 4, Figures 6-9, 14-15 ---

func runSpec(b *testing.B, name string) *dikes.DDoSResult {
	b.Helper()
	spec, ok := dikes.SpecByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	return dikes.RunDDoS(spec, benchProbes, 7, dikes.PopulationConfig{})
}

func BenchmarkTable4DDoSMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := dikes.RunDDoSMatrix(dikes.PaperExperiments, benchProbes/2, 7, dikes.PopulationConfig{}, 0)
		printOnce(b, i, "Table 4: DDoS experiment matrix A-I", dikes.RenderTable4(results))
	}
}

// BenchmarkTable4DDoSMatrixSequential is the same matrix pinned to one
// worker — the benchstat baseline for the parallel speedup.
func BenchmarkTable4DDoSMatrixSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := dikes.RunDDoSMatrix(dikes.PaperExperiments, benchProbes/2, 7, dikes.PopulationConfig{}, 1)
		printOnce(b, i, "Table 4 (sequential): DDoS experiment matrix A-I", dikes.RenderTable4(results))
	}
}

// BenchmarkParallelMatrix is a down-scaled matrix for the `make check`
// smoke run: three experiments at a quarter of the bench probe count.
func BenchmarkParallelMatrix(b *testing.B) {
	specs := []dikes.DDoSSpec{}
	for _, name := range []string{"A", "E", "I"} {
		spec, ok := dikes.SpecByName(name)
		if !ok {
			b.Fatalf("unknown experiment %q", name)
		}
		specs = append(specs, spec)
	}
	for i := 0; i < b.N; i++ {
		results := dikes.RunDDoSMatrix(specs, benchProbes/4, 7, dikes.PopulationConfig{}, 0)
		if len(results) != len(specs) {
			b.Fatalf("got %d results for %d specs", len(results), len(specs))
		}
	}
}

func BenchmarkFigure6CompleteFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"A", "B", "C"} {
			res := runSpec(b, name)
			printOnce(b, i, "Figure 6"+name+": answers during complete failure (exp "+name+")",
				res.Answers.Table([]string{"OK", "SERVFAIL", "NoAnswer"}))
			if name == "A" {
				b.ReportMetric(100*res.FailureRate(9), "expA_postcache_fail_pct")
			}
		}
	}
}

func BenchmarkFigure7ExperimentBSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runSpec(b, "B")
		printOnce(b, i, "Figure 7: AA/CC/CA time series, experiment B",
			res.Classes.Table([]string{"AA", "CC", "CA"}))
	}
}

func BenchmarkFigure8PartialFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"E", "F", "H", "I"} {
			res := runSpec(b, name)
			printOnce(b, i, "Figure 8: answers during partial failure (exp "+name+")",
				res.Answers.Table([]string{"OK", "SERVFAIL", "NoAnswer"}))
			b.ReportMetric(100*res.FailureRate(9), "exp"+name+"_fail_pct")
		}
	}
}

func BenchmarkFigure9Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"E", "F", "H", "I"} {
			res := runSpec(b, name)
			printOnce(b, i, "Figure 9: latency quantiles (exp "+name+")", dikes.RenderLatency(res))
			if name == "I" {
				b.ReportMetric(res.Latency[9].Median, "expI_median_ms")
			}
		}
	}
}

func BenchmarkFigure14ExtraDDoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"D", "G"} {
			res := runSpec(b, name)
			printOnce(b, i, "Figure 14: answers (exp "+name+")",
				res.Answers.Table([]string{"OK", "SERVFAIL", "NoAnswer"}))
			b.ReportMetric(100*res.FailureRate(9), "exp"+name+"_fail_pct")
		}
	}
}

func BenchmarkFigure15ExtraLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"D", "G"} {
			res := runSpec(b, name)
			printOnce(b, i, "Figure 15: latency quantiles (exp "+name+")", dikes.RenderLatency(res))
		}
	}
}

// --- §6 authoritative's perspective: Figures 10-12, 16, Table 7 ---

func runSpecFullHarvest(b *testing.B, name string) *dikes.DDoSResult {
	b.Helper()
	spec, ok := dikes.SpecByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	return dikes.RunDDoS(spec, benchProbes, 7, dikes.PopulationConfig{Harvest: dikes.HarvestFull})
}

func BenchmarkFigure10AuthLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"F", "H", "I"} {
			res := runSpecFullHarvest(b, name)
			printOnce(b, i, "Figure 10: queries at the authoritatives (exp "+name+")",
				res.AuthQueries.Table([]string{"NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"}))
			if name == "H" {
				base := res.AuthQueries.Get(4, "AAAA-for-PID")
				atk := res.AuthQueries.Get(9, "AAAA-for-PID")
				if base > 0 {
					b.ReportMetric(atk/base, "expH_traffic_multiplier")
				}
			}
		}
	}
}

func BenchmarkFigure11Amplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runSpecFullHarvest(b, "I")
		printOnce(b, i, "Figure 11: Rn and AAAA queries per probe (exp I)",
			dikes.RenderAmplification(res))
		if len(res.RnPerProbe) > 9 {
			b.ReportMetric(res.RnPerProbe[9].Median, "rn_median_attack")
		}
	}
}

func BenchmarkFigure12UniqueRecursives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"F", "H", "I"} {
			res := runSpecFullHarvest(b, name)
			printOnce(b, i, "Figure 12: unique Rn at the authoritatives (exp "+name+")",
				dikes.RenderUniqueRn(res))
		}
	}
}

func BenchmarkFigure16SoftwareRetries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var body string
		for _, profile := range []dikes.RetryProfile{dikes.BINDLike(), dikes.UnboundLike()} {
			for _, down := range []bool{false, true} {
				res := dikes.RunRetryTrials(profile, down, 25, 3)
				state := "up"
				if down {
					state = "down"
				}
				body += fmt.Sprintf("%-8s %-5s root=%.1f net=%.1f cachetest.net=%.1f total=%.1f\n",
					profile.Name, state, res.Mean.Root, res.Mean.Net,
					res.Mean.Target, res.Mean.Total())
			}
		}
		printOnce(b, i, "Figure 16: queries by recursive software, up vs down", body)
	}
}

func BenchmarkTable7PerProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, _ := dikes.SpecByName("I")
		res, tb := dikes.RunDDoSWithTestbed(spec, benchProbes, 7,
			dikes.PopulationConfig{Harvest: dikes.HarvestFull})
		probe := dikes.BusiestProbe(tb)
		printOnce(b, i, "Table 7: per-probe client vs authoritative view (exp I)",
			dikes.RenderTable7(dikes.PerProbe(tb, res, probe)))
	}
}

// --- Appendix A: Tables 5-6 ---

func BenchmarkTable5GlueVsAuth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := dikes.RunGlueVsAuth(benchProbes, 7, dikes.PopulationConfig{})
		printOnce(b, i, "Table 5: glue vs authoritative TTL in answers", dikes.RenderTable5(res))
		b.ReportMetric(100*res.NS.AuthoritativeShare(), "child_share_pct")
	}
}

func BenchmarkTable6ChildCentricTTL(b *testing.B) {
	// The cache-dump reproduction of Listings 3-4: an NS answer from the
	// child replaces the longer-TTL glue in the resolver cache.
	epoch := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		clk := clock.NewVirtual(epoch)
		c := cache.New(clk, cache.Config{})
		glue := dnswire.RR{Name: "amazon.com.", Class: dnswire.ClassIN, TTL: 172800,
			Data: dnswire.NS{Host: "ns1.p31.dynect.net."}}
		auth := glue
		auth.TTL = 3600
		c.Put(cache.Key{Name: "amazon.com.", Type: dnswire.TypeNS},
			cache.Entry{Records: []dnswire.RR{glue}, Rank: cache.RankAuthority}, 0)
		c.Put(cache.Key{Name: "amazon.com.", Type: dnswire.TypeNS},
			cache.Entry{Records: []dnswire.RR{auth}, Rank: cache.RankAnswer}, 0)
		dump := c.Dump(0)
		if len(dump) != 1 || dump[0].TTL != 3600 {
			b.Fatalf("cache dump = %v", dump)
		}
		printOnce(b, i, "Table 6 / Listings 3-4: cache stores the child's TTL",
			fmt.Sprintf("  %s\n", dump[0]))
	}
}

// BenchmarkSection8RootVsCDN regenerates the paper's §8 comparison: the
// root-like service (day-long TTLs, anycast letters) vs the CDN-like
// service (120 s TTLs, two unicast NSes) under simultaneous attack.
func BenchmarkSection8RootVsCDN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := dikes.RunImplications(dikes.ImplicationsConfig{
			Clients: 200, Recursives: 20, Seed: 3,
		})
		printOnce(b, i, "Section 8: root-like vs CDN-like under attack",
			dikes.RenderImplications(res))
		b.ReportMetric(100*res.RootFailDuringAttack, "root_fail_pct")
		b.ReportMetric(100*res.CDNFailDuringAttack, "cdn_fail_pct")
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

func BenchmarkAblationServeStale(b *testing.B) {
	spec, _ := dikes.SpecByName("A") // complete failure
	for i := 0; i < b.N; i++ {
		var base, stale *dikes.DDoSResult
		parallel.Do(
			func() {
				base = dikes.RunDDoS(spec, benchProbes, 7, dikes.PopulationConfig{
					FracFarmOther: 0.0001, // effectively no serve-stale farms
				})
			},
			func() {
				stale = dikes.RunDDoS(spec, benchProbes, 7, dikes.PopulationConfig{
					ServeStaleDirect: true, // universal serve-stale adoption
				})
			},
		)
		body := fmt.Sprintf("post-expiry failure: no-stale=%.1f%% universal-stale=%.1f%%\n",
			100*base.FailureRate(9), 100*stale.FailureRate(9))
		printOnce(b, i, "Ablation: serve-stale adoption vs survival in complete failure", body)
		b.ReportMetric(100*(base.FailureRate(9)-stale.FailureRate(9)), "stale_benefit_pct")
	}
}

func BenchmarkAblationCacheFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mono := dikes.RunCaching(dikes.CachingConfig{
			Probes: benchProbes, TTL: 3600, ProbeInterval: 20 * time.Minute,
			Rounds: 5, Seed: 7,
			Population: dikes.PopulationConfig{GoogleBackends: 1, OtherBackends: 1},
		})
		frag := dikes.RunCaching(dikes.CachingConfig{
			Probes: benchProbes, TTL: 3600, ProbeInterval: 20 * time.Minute,
			Rounds: 5, Seed: 7,
			Population: dikes.PopulationConfig{GoogleBackends: 32, OtherBackends: 16},
		})
		body := fmt.Sprintf("miss rate: 1-backend farms=%.1f%% vs 32-backend farms=%.1f%%\n",
			100*mono.MissRate, 100*frag.MissRate)
		printOnce(b, i, "Ablation: cache fragmentation vs miss rate", body)
		b.ReportMetric(100*(frag.MissRate-mono.MissRate), "fragmentation_cost_pct")
	}
}

func BenchmarkAblationTTLUnderAttack(b *testing.B) {
	// Experiments H (TTL 1800) vs I (TTL 60) isolate the TTL's value
	// during a 90% DDoS — the paper's §8 CDN recommendation.
	specH, _ := dikes.SpecByName("H")
	specI, _ := dikes.SpecByName("I")
	for i := 0; i < b.N; i++ {
		var long, short *dikes.DDoSResult
		parallel.Do(
			func() { long = dikes.RunDDoS(specH, benchProbes, 7, dikes.PopulationConfig{}) },
			func() { short = dikes.RunDDoS(specI, benchProbes, 7, dikes.PopulationConfig{}) },
		)
		body := fmt.Sprintf("failure under 90%% loss: TTL1800=%.1f%% TTL60=%.1f%%\n",
			100*long.FailureRate(9), 100*short.FailureRate(9))
		body += fmt.Sprintf("median latency: TTL1800=%.0fms TTL60=%.0fms\n",
			long.Latency[9].Median, short.Latency[9].Median)
		printOnce(b, i, "Ablation: TTL length under 90% attack (H vs I)", body)
		b.ReportMetric(100*(short.FailureRate(9)-long.FailureRate(9)), "ttl_benefit_pct")
	}
}

func BenchmarkAblationNameserverReplication(b *testing.B) {
	// Experiment D (one NS attacked) vs E (both attacked) shows the value
	// of NS replication; here we additionally vary the NS count.
	for i := 0; i < b.N; i++ {
		one := runSpec(b, "D")
		both := runSpec(b, "E")
		body := fmt.Sprintf("failure at 50%% loss: one-NS-attacked=%.1f%% both=%.1f%%\n",
			100*one.FailureRate(9), 100*both.FailureRate(9))
		printOnce(b, i, "Ablation: nameserver replication (D vs E)", body)
	}
}

// BenchmarkAblationOverprovisioning sweeps server capacity against a
// fixed volumetric flood — the provisioning question §6 raises ("DNS
// servers are typically heavily overprovisioned; this result suggests the
// need to review by how much").
func BenchmarkAblationOverprovisioning(b *testing.B) {
	spec, _ := dikes.SpecByName("H")
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf("%12s %10s %10s\n", "capacity", "loss", "failures")
		for _, capacity := range []float64{1, 2, 5, 10, 20} {
			flood := dikes.Flood{AttackQPS: 10, CapacityQPS: capacity}
			s := spec
			s.Name = fmt.Sprintf("cap-%gx", capacity)
			s.Loss = flood.LossRate()
			res := dikes.RunDDoS(s, benchProbes/2, 7, dikes.PopulationConfig{})
			body += fmt.Sprintf("%11gx %9.0f%% %9.1f%%\n",
				capacity, 100*flood.LossRate(), 100*res.FailureRate(9))
		}
		printOnce(b, i, "Ablation: overprovisioning vs a 10-unit flood", body)
	}
}

// BenchmarkAblationPrefetch compares populations with and without
// Unbound-style prefetch through experiment B's complete outage (an
// extension experiment: prefetch refreshes entries just before the attack
// lands, so caches enter the outage fresher).
func BenchmarkAblationPrefetch(b *testing.B) {
	spec, _ := dikes.SpecByName("B")
	for i := 0; i < b.N; i++ {
		var base, pre *dikes.DDoSResult
		parallel.Do(
			func() { base = dikes.RunDDoS(spec, benchProbes, 7, dikes.PopulationConfig{}) },
			func() { pre = dikes.RunDDoS(spec, benchProbes, 7, dikes.PopulationConfig{PrefetchDirect: 0.9}) },
		)
		body := fmt.Sprintf("failure 30min into the outage: plain=%.1f%% prefetch=%.1f%%\n",
			100*base.FailureRate(9), 100*pre.FailureRate(9))
		printOnce(b, i, "Ablation: prefetch vs cache age at attack onset (exp B)", body)
		b.ReportMetric(100*(base.FailureRate(9)-pre.FailureRate(9)), "prefetch_benefit_pct")
	}
}

func BenchmarkAblationRetryBudget(b *testing.B) {
	// A single try vs exponential retries against a 90%-loss zone.
	for i := 0; i < b.N; i++ {
		noRetry := dikes.RunRetryTrials(dikes.RetryProfile{
			Name: "no-retry", MaxAttempts: 1, WorkBudget: 8,
		}, false, 20, 3)
		full := dikes.RunRetryTrials(dikes.BINDLike(), false, 20, 3)
		body := fmt.Sprintf("answered (servers up): 1-try=%d/20 retry=%d/20\n",
			noRetry.Answered, full.Answered)
		printOnce(b, i, "Ablation: retry budget", body)
	}
}

// --- Engine micro-benchmarks ---

func BenchmarkWirePack(b *testing.B) {
	m := dikes.NewQuery(1, "1414.cachetest.nl.", dikes.TypeAAAA)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireUnpack(b *testing.B) {
	m := dikes.NewQuery(1, "1414.cachetest.nl.", dikes.TypeAAAA)
	wire, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dikes.Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZoneLookup(b *testing.B) {
	z := zone.New("cachetest.nl.")
	z.MustAdd(dnswire.RR{Name: "cachetest.nl.", TTL: 3600, Data: dnswire.SOA{
		MName: "ns1.cachetest.nl.", RName: "h.cachetest.nl.", Minimum: 60}})
	for id := 1; id <= 10000; id++ {
		z.MustAdd(dnswire.RR{Name: fmt.Sprintf("%d.cachetest.nl.", id), TTL: 60,
			Data: dnswire.AAAA{Addr: dikes.MustAddr("2001:db8::1")}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := z.Lookup(fmt.Sprintf("%d.cachetest.nl.", i%10000+1), dnswire.TypeAAAA)
		if res.Kind != 0 {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	clk := clock.NewVirtual(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	c := cache.New(clk, cache.Config{Capacity: 10000})
	rr := dnswire.RR{Name: "a.cachetest.nl.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.AAAA{Addr: dikes.MustAddr("2001:db8::1")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := cache.Key{Name: fmt.Sprintf("%d.cachetest.nl.", i%5000), Type: dnswire.TypeAAAA}
		c.Put(k, cache.Entry{Records: []dnswire.RR{rr}, Rank: cache.RankAnswer}, 0)
		if v := c.Get(k, 0); !v.Hit {
			b.Fatal("miss after put")
		}
	}
}

// BenchmarkCachePutPeek is BenchmarkCachePutGet with the clone-free
// read path the resolver's internal lookups use.
func BenchmarkCachePutPeek(b *testing.B) {
	clk := clock.NewVirtual(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	c := cache.New(clk, cache.Config{Capacity: 10000})
	rr := dnswire.RR{Name: "a.cachetest.nl.", Class: dnswire.ClassIN, TTL: 300,
		Data: dnswire.AAAA{Addr: dikes.MustAddr("2001:db8::1")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := cache.Key{Name: fmt.Sprintf("%d.cachetest.nl.", i%5000), Type: dnswire.TypeAAAA}
		c.Put(k, cache.Entry{Records: []dnswire.RR{rr}, Rank: cache.RankAnswer}, 0)
		if v := c.Peek(k, 0); !v.Hit {
			b.Fatal("miss after put")
		}
	}
}

// BenchmarkResolveThroughSim measures end-to-end resolutions per second
// through the full simulated hierarchy (root -> nl -> cachetest.nl),
// cold-cache each iteration.
func BenchmarkResolveThroughSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := dikes.NewTestbed(dikes.TestbedConfig{Probes: 1, Seed: int64(i)})
		r := dikes.NewResolver(tb.Clk, dikes.ResolverConfig{
			RootHints: []dikes.ServerHint{{Name: "a.root-servers.net.", Addr: "198.41.0.4"}},
			Seed:      int64(i),
		})
		r.Attach(tb.Net, "bench-res")
		done := false
		r.Resolve("1.cachetest.nl.", dikes.TypeAAAA, 0, func(res dikes.ResolveResult) {
			done = !res.ServFail
		})
		tb.Clk.RunFor(time.Hour)
		if !done {
			b.Fatal("resolution failed")
		}
	}
}

// BenchmarkNetworkDelivery measures raw simulated packet throughput.
func BenchmarkNetworkDelivery(b *testing.B) {
	clk := clock.NewVirtual(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	net := dikes.NewNetwork(clk, 1)
	delivered := 0
	net.Bind("sink", func(dikes.Addr, []byte) { delivered++ })
	payload := []byte("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send("src", "sink", payload)
		if i%1024 == 0 {
			clk.Run()
		}
	}
	clk.Run()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkDNSSECSignVerify measures Ed25519 RRset signing and
// verification.
func BenchmarkDNSSECSignVerify(b *testing.B) {
	key, err := dikes.GenerateKey("bench.nl.", dikes.FlagZone, cryptoRandReader{})
	if err != nil {
		b.Fatal(err)
	}
	rrs := []dikes.RR{{
		Name: "www.bench.nl.", Class: 1, TTL: 300, Data: dikes.MustAAAA("2001:db8::1"),
	}}
	now := time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sig, err := key.Sign(rrs, now, now.Add(time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if err := dikes.VerifyRRSet(key.Public, sig, rrs, now); err != nil {
			b.Fatal(err)
		}
	}
}

// cryptoRandReader adapts a fixed stream for benchmark key generation.
type cryptoRandReader struct{}

func (cryptoRandReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i * 37)
	}
	return len(p), nil
}

// --- §12 tracing overhead (satellite of the observability PR) ---

// runTraceBench executes one sharded spec-H run (TTL 1800, 90% loss)
// with the given trace configuration.
func runTraceBench(b *testing.B, tr *dikes.TraceConfig) *dikes.Outcome {
	b.Helper()
	spec, ok := dikes.SpecByName("H")
	if !ok {
		b.Fatal("spec H missing")
	}
	out, err := dikes.Run(context.Background(), dikes.DDoSScenario(spec), dikes.RunConfig{
		Probes: 600, Seed: 42, Shards: 2, ShardProbes: 256, Trace: tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkTraceOverhead measures the cost of query-lifecycle tracing on
// the sharded engine: off (the nil-check-only baseline every production
// run pays), sampled (1-in-100 probes, the million-VP setting), and full.
// The acceptance bar is off-vs-seed regression under 2%; the off/full
// delta is the price of a complete trace.
func BenchmarkTraceOverhead(b *testing.B) {
	cases := []struct {
		name string
		tr   *dikes.TraceConfig
	}{
		{"off", nil},
		{"sampled100", &dikes.TraceConfig{SampleEvery: 100}},
		{"full", &dikes.TraceConfig{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				out := runTraceBench(b, c.tr)
				if out.Trace != nil {
					events = out.Trace.Len()
				}
			}
			b.ReportMetric(float64(events), "trace_events")
		})
	}
}

// --- §17 timeline overhead (tentpole of the observability PR) ---

// runTimelineBench executes one sharded spec-H run (TTL 1800, 90% loss)
// with the given timeline configuration.
func runTimelineBench(b *testing.B, tlc *dikes.TimelineConfig) *dikes.Outcome {
	b.Helper()
	spec, ok := dikes.SpecByName("H")
	if !ok {
		b.Fatal("spec H missing")
	}
	out, err := dikes.Run(context.Background(), dikes.DDoSScenario(spec), dikes.RunConfig{
		Probes: 600, Seed: 42, Shards: 2, ShardProbes: 256, Timeline: tlc,
	})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkTimelineOverhead measures the cost of per-bucket series
// collection on the sharded engine: off (the nil-check-only baseline
// every production run pays) and on at the default one-minute bucket.
// The acceptance bar is on-vs-off regression under 2%: observations are
// one array index plus an integer increment, and the per-cell bins are
// a few KB, so collection is effectively free next to the simulator.
func BenchmarkTimelineOverhead(b *testing.B) {
	cases := []struct {
		name string
		tlc  *dikes.TimelineConfig
	}{
		{"off", nil},
		{"on", &dikes.TimelineConfig{}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var answered int64
			for i := 0; i < b.N; i++ {
				out := runTimelineBench(b, c.tlc)
				if out.Timeline != nil {
					answered = out.Timeline.Total(dikes.TimelineAnswered)
				}
			}
			b.ReportMetric(float64(answered), "timeline_answered")
		})
	}
}
