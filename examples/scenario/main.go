// Scenario API tour: run the paper's experiment families through the
// unified entry point — one config shape, cooperative cancellation, and
// the sharded streaming engine behind a single knob.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	dikes "repro"
)

func main() {
	ctx := context.Background()

	// A Table 4 attack through the sharded engine: the population splits
	// into 32-probe cells (default 4096 — tiny here so several cells
	// exist at this scale), 4 run concurrently, and the per-cell results
	// stream into mergeable accumulators. Byte-identical for any Shards
	// value >= 1.
	spec, _ := dikes.SpecByName("H")
	out, err := dikes.Run(ctx, dikes.DDoSScenario(spec), dikes.RunConfig{
		Probes: 120, Seed: 42, Shards: 4, ShardProbes: 32,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("experiment %s: %d probes, %d VPs, invariants ok=%v\n",
		spec.Name, out.DDoS.Table4.Probes, out.DDoS.Table4.VPs, out.Report.OK())
	fmt.Printf("still answered in the last attack round: %.0f%%\n\n",
		100*(1-out.DDoS.FailureRate(9)))

	// The caching baseline through the same entry point; TTL, probing
	// interval, and rounds ride in the RunConfig.
	out, err = dikes.Run(ctx, dikes.CachingScenario(), dikes.RunConfig{
		Probes: 120, Seed: 42, Shards: 4, ShardProbes: 32,
		TTL: 3600, ProbeInterval: 20 * time.Minute, Rounds: 6,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("caching baseline (TTL 3600): miss rate %.1f%%\n\n",
		100*out.Caching.MissRate)

	// The adversary family rides the same engine: a malicious wide
	// delegation amplifies each client query at the victim's servers
	// unless the resolver caps its glueless NS fan-out (max-fetch(k)).
	out, err = dikes.Run(ctx, dikes.NXNSScenario(dikes.NXNSSpec{
		Widths: []int{12}, MaxFetch: 4,
	}), dikes.RunConfig{Probes: 64, Seed: 42, Shards: 2, ShardProbes: 32})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("NXNS width 12 with max-fetch(4): amplification %.2f\n\n",
		out.NXNS.Rows[0].Amplification())

	// Cancellation is cooperative and typed: a cancelled run returns the
	// merged partial results of the cells that finished plus an error
	// satisfying errors.Is(err, dikes.ErrCancelled).
	cctx, cancel := context.WithCancel(ctx)
	cancel() // cancel before the run even starts
	_, err = dikes.Run(cctx, dikes.GlueScenario(), dikes.RunConfig{
		Probes: 64, Seed: 42, Shards: 2, ShardProbes: 32,
	})
	fmt.Printf("cancelled run: err=%v, typed=%v\n",
		err, errors.Is(err, dikes.ErrCancelled))
}
