// Serve-stale scenario: the §5.3 observation — a few resolvers answer
// with expired records (TTL 0) when every authoritative is unreachable,
// riding out a complete outage. This example builds two resolvers, one
// with serve-stale and one without, and compares them through a total
// authoritative failure.
package main

import (
	"fmt"
	"time"

	dikes "repro"
)

const zoneText = `
$ORIGIN shop.nl.
$TTL 60
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A    192.0.2.1
www  IN AAAA 2001:db8::443
`

func main() {
	clk := dikes.NewVirtualClock(time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC))
	net := dikes.NewNetwork(clk, 1)

	z, err := dikes.ParseZoneString(zoneText, "")
	if err != nil {
		panic(err)
	}
	dikes.NewAuthoritative(z).Attach(net, "192.0.2.1")
	hints := []dikes.ServerHint{{Name: "ns1.shop.nl.", Addr: "192.0.2.1"}}

	plain := dikes.NewResolver(clk, dikes.ResolverConfig{RootHints: hints})
	plain.Attach(net, "10.0.0.1")
	stale := dikes.NewResolver(clk, dikes.ResolverConfig{
		RootHints:  hints,
		ServeStale: true,
		Cache:      dikes.CacheConfig{StaleWindow: time.Hour},
	})
	stale.Attach(net, "10.0.0.2")

	lookup := func(r *dikes.Resolver, label string) {
		r.Resolve("www.shop.nl.", dikes.TypeAAAA, 0, func(res dikes.ResolveResult) {
			switch {
			case res.ServFail:
				fmt.Printf("  %-12s SERVFAIL\n", label)
			case res.Stale:
				fmt.Printf("  %-12s %v (TTL %d, STALE)\n", label,
					res.Answers[0].Data, res.Answers[0].TTL)
			default:
				fmt.Printf("  %-12s %v (TTL %d)\n", label,
					res.Answers[0].Data, res.Answers[0].TTL)
			}
		})
		clk.RunFor(30 * time.Second)
	}

	fmt.Println("t=0: both resolvers warm their caches (TTL 60 s):")
	lookup(plain, "plain:")
	lookup(stale, "serve-stale:")

	fmt.Println("\nt+5min: the authoritative is knocked out (100% loss), caches expired:")
	clk.RunFor(5 * time.Minute)
	net.SetInboundLoss("192.0.2.1", 1)
	lookup(plain, "plain:")
	lookup(stale, "serve-stale:")

	fmt.Println("\nt+70min: still down, but past the stale window:")
	clk.RunFor(65 * time.Minute)
	lookup(stale, "serve-stale:")

	fmt.Println("\nthe paper saw exactly this from OpenDNS and Google Public DNS")
	fmt.Println("during emulated outages: stale answers with TTL 0 (§5.3).")
}
