// DNSSEC zone scenario: generate an Ed25519 key, sign a zone, serve it,
// query with the DO bit, and validate the answers — including the case
// the paper cares about: a cached (TTL-decremented) answer still
// validates, because RRSIGs carry the original TTL.
package main

import (
	"crypto/rand"
	"fmt"
	"time"

	dikes "repro"
)

const zoneText = `
$ORIGIN bank.nl.
$TTL 3600
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A    192.0.2.1
www  IN AAAA 2001:db8::443
`

func main() {
	start := time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC)
	clk := dikes.NewVirtualClock(start)
	net := dikes.NewNetwork(clk, 1)

	z, err := dikes.ParseZoneString(zoneText, "")
	check(err)
	key, err := dikes.GenerateKey("bank.nl.", dikes.FlagZone, rand.Reader)
	check(err)
	check(dikes.SignZone(z, key, start, 7*24*time.Hour))
	fmt.Printf("signed zone bank.nl. with Ed25519 key (tag %d)\n", key.KeyTag())
	fmt.Printf("parent-side DS: %v\n\n", key.DS(3600).Data)

	dikes.NewAuthoritative(z).Attach(net, "192.0.2.1")

	// Query with the DO bit and validate what comes back.
	client := dikes.NewStub(clk, dikes.StubConfig{})
	client.Attach(net, "10.0.0.1")
	q := dikes.NewQuery(1, "www.bank.nl.", dikes.TypeAAAA)
	q.AddEDNS(4096, true)
	wire, err := q.Pack()
	check(err)

	var answer *dikes.Message
	net.Bind("10.0.0.9", func(src dikes.Addr, payload []byte) {
		m, err := dikes.Unpack(payload)
		check(err)
		answer = m
	})
	net.Send("10.0.0.9", "192.0.2.1", wire)
	clk.Run()

	var dataRRs, sigs []dikes.RR
	for _, rr := range answer.Answers {
		if rr.Type() == 46 { // RRSIG
			sigs = append(sigs, rr)
		} else {
			dataRRs = append(dataRRs, rr)
		}
	}
	fmt.Printf("answer: %v (TTL %d) with %d signature(s)\n",
		dataRRs[0].Data, dataRRs[0].TTL, len(sigs))

	if err := dikes.VerifyRRSet(key.Public, sigs[0], dataRRs, clk.Now()); err != nil {
		fmt.Println("validation FAILED:", err)
		return
	}
	fmt.Println("signature validates against the zone key")

	// A cached copy with a decremented TTL still validates: RRSIGs carry
	// the original TTL, so resolver caching does not break DNSSEC.
	aged := append([]dikes.RR(nil), dataRRs...)
	aged[0].TTL = 17
	if err := dikes.VerifyRRSet(key.Public, sigs[0], aged, clk.Now()); err != nil {
		fmt.Println("aged-copy validation FAILED:", err)
		return
	}
	fmt.Println("a cache-aged copy (TTL 17) also validates")

	// And tampering is caught.
	forged := append([]dikes.RR(nil), dataRRs...)
	forged[0].Data = dikes.MustAAAA("2001:db8::bad")
	if err := dikes.VerifyRRSet(key.Public, sigs[0], forged, clk.Now()); err != nil {
		fmt.Printf("forged answer rejected: %v\n", err)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
