// DDoS attack scenario: emulate the paper's Experiment H — a 90% packet
// loss attack on both authoritatives of a zone with 30-minute TTLs — and
// print the client experience round by round, then sweep the attack
// intensity to find where the dike breaks.
package main

import (
	"fmt"

	dikes "repro"
)

func main() {
	spec, ok := dikes.SpecByName("H")
	if !ok {
		panic("experiment H missing")
	}
	fmt.Printf("Experiment %s: %.0f%% loss on both authoritatives, TTL %d s\n",
		spec.Name, spec.Loss*100, spec.TTL)
	fmt.Printf("attack from minute %.0f for %.0f minutes\n\n",
		spec.DDoSStart.Minutes(), spec.DDoSDur.Minutes())

	res := dikes.RunDDoS(spec, 600, 42, dikes.PopulationConfig{})

	fmt.Println("client-side answers per 10-minute round:")
	fmt.Print(res.Answers.Table([]string{"OK", "SERVFAIL", "NoAnswer"}))

	fmt.Printf("\nfailure rate before the attack:  %5.1f%%\n", 100*res.FailureRate(4))
	fmt.Printf("failure rate during the attack:  %5.1f%%\n", 100*res.FailureRate(9))
	fmt.Printf("median latency before/during:    %4.0f ms / %4.0f ms\n",
		res.Latency[4].Median, res.Latency[9].Median)
	fmt.Printf("p90 latency before/during:       %4.0f ms / %4.0f ms\n",
		res.Latency[4].P90, res.Latency[9].P90)

	// Sweep the attack intensity: the paper's headline is that caching
	// and retries hold the line until loss gets extreme.
	fmt.Println("\nsweeping attack intensity (TTL 1800 s, both NSes):")
	fmt.Printf("%8s %12s\n", "loss", "failures")
	for _, loss := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0} {
		s := spec
		s.Name = fmt.Sprintf("sweep-%.0f", loss*100)
		s.Loss = loss
		r := dikes.RunDDoS(s, 400, 42, dikes.PopulationConfig{})
		fmt.Printf("%7.0f%% %11.1f%%\n", loss*100, 100*r.FailureRate(9))
	}
}
