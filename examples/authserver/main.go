// Authserver: run a real authoritative DNS server on a UDP socket with
// the library's engine, query it with the library's stub resolver, and
// emulate a DDoS against it — all in one process. This is the paper's
// testbed (§5.1) in miniature, on real sockets instead of the simulator.
package main

import (
	"fmt"
	"math/rand"
	"time"

	dikes "repro"
	"repro/internal/udprun"
)

const zoneText = `
$ORIGIN cachetest.nl.
$TTL 1800
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A    127.0.0.1
1414 IN AAAA fd0f:3897:faf7:a375:1:586::3c
`

func main() {
	z, err := dikes.ParseZoneString(zoneText, "")
	if err != nil {
		panic(err)
	}
	srv := dikes.NewAuthoritative(z)

	// Authoritative on a real UDP socket, with a drop probability we can
	// turn into a DDoS (the paper's iptables emulation).
	loss := 0.0
	rng := rand.New(rand.NewSource(1))
	authLoop := udprun.NewLoop()
	go authLoop.Run()
	authConn, err := udprun.Listen("127.0.0.1:0", authLoop)
	if err != nil {
		panic(err)
	}
	go authConn.Serve(func(src dikes.Addr, payload []byte) {
		if loss > 0 && rng.Float64() < loss {
			return
		}
		if out := srv.HandleWire(payload); out != nil {
			authConn.Send(src, out)
		}
	})
	fmt.Printf("authoritative for cachetest.nl on %s\n\n", authConn.Addr())

	// A stub client with 1 s timeout and 2 retries.
	cliLoop := udprun.NewLoop()
	go cliLoop.Run()
	cliConn, err := udprun.Listen("127.0.0.1:0", cliLoop)
	if err != nil {
		panic(err)
	}
	client := dikes.NewStub(udprun.Clock{Loop: cliLoop},
		dikes.StubConfig{Timeout: time.Second, Retries: 2})
	client.SetConn(cliConn)
	go cliConn.Serve(client.Receive)

	query := func() (ok bool, rtt time.Duration) {
		done := make(chan dikes.StubResult, 1)
		cliLoop.Post(func() {
			client.Query(authConn.Addr(), "1414.cachetest.nl.", dikes.TypeAAAA,
				func(r dikes.StubResult) { done <- r })
		})
		r := <-done
		return r.Err == nil, r.RTT
	}

	run := func(label string, n int) {
		okCount := 0
		var total time.Duration
		for i := 0; i < n; i++ {
			ok, rtt := query()
			if ok {
				okCount++
				total += rtt
			}
		}
		mean := time.Duration(0)
		if okCount > 0 {
			mean = total / time.Duration(okCount)
		}
		fmt.Printf("%-24s answered %2d/%2d, mean RTT %v\n", label, okCount, n, mean.Round(10*time.Microsecond))
	}

	run("normal operation:", 20)
	loss = 0.5
	run("DDoS with 50% loss:", 20)
	loss = 0.9
	run("DDoS with 90% loss:", 20)
	loss = 1.0
	run("complete failure:", 5)

	fmt.Println("\nwith 2 retries per query, the stub shrugs off 50% loss — the")
	fmt.Println("paper's §5.4 finding that retries plus caching mask moderate DDoS.")
}
