// Quickstart: build a miniature DNS ecosystem on the deterministic
// simulator — a root, a TLD, two authoritatives and a caching recursive —
// resolve a name through the full hierarchy, and watch the cache work.
package main

import (
	"fmt"
	"time"

	dikes "repro"
)

const rootZone = `
$ORIGIN .
$TTL 518400
@   IN SOA a.root-servers.net. nstld.verisign-grs.com. 1 1800 900 604800 86400
@   IN NS a.root-servers.net.
a.root-servers.net. IN A 198.41.0.4
nl. 172800 IN NS ns1.dns.nl.
ns1.dns.nl. 172800 IN A 194.0.28.53
`

const nlZone = `
$ORIGIN nl.
$TTL 7200
@ IN SOA ns1.dns.nl. hostmaster.dns.nl. 1 3600 600 2419200 3600
@ IN NS ns1.dns.nl.
ns1.dns IN A 194.0.28.53
example 3600 IN NS ns1.example.nl.
ns1.example 3600 IN A 192.0.2.1
`

const exampleZone = `
$ORIGIN example.nl.
$TTL 300
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A    192.0.2.1
www  IN AAAA 2001:db8::80
www  IN A    192.0.2.80
`

func mustZone(text string) *dikes.Zone {
	z, err := dikes.ParseZoneString(text, "")
	if err != nil {
		panic(err)
	}
	return z
}

func main() {
	// A virtual clock and a simulated network: multi-hour scenarios run
	// in microseconds and are bit-for-bit reproducible.
	clk := dikes.NewVirtualClock(time.Date(2018, 5, 1, 12, 0, 0, 0, time.UTC))
	net := dikes.NewNetwork(clk, 42)

	// The hierarchy: root -> nl -> example.nl.
	dikes.NewAuthoritative(mustZone(rootZone)).Attach(net, "198.41.0.4")
	dikes.NewAuthoritative(mustZone(nlZone)).Attach(net, "194.0.28.53")
	dikes.NewAuthoritative(mustZone(exampleZone)).Attach(net, "192.0.2.1")

	// A caching recursive resolver seeded with the root hint.
	resolver := dikes.NewResolver(clk, dikes.ResolverConfig{
		RootHints: []dikes.ServerHint{{Name: "a.root-servers.net.", Addr: "198.41.0.4"}},
	})
	resolver.Attach(net, "10.0.0.53")

	resolve := func(name string, qtype dikes.Type) {
		resolver.Resolve(name, qtype, 0, func(res dikes.ResolveResult) {
			src := "authoritatives"
			if res.FromCache {
				src = "cache"
			}
			fmt.Printf("%-16s %-5s -> %s (rcode %s, from %s)\n",
				name, qtype, render(res), res.RCode, src)
		})
		clk.Run() // drive the event loop to completion
	}

	fmt.Println("first lookups walk the hierarchy:")
	resolve("www.example.nl.", dikes.TypeAAAA)
	resolve("www.example.nl.", dikes.TypeA)
	resolve("missing.example.nl.", dikes.TypeA)

	fmt.Println("\nten simulated seconds later, everything is cached:")
	clk.RunFor(10 * time.Second)
	resolve("www.example.nl.", dikes.TypeAAAA)
	resolve("missing.example.nl.", dikes.TypeA) // negative cache

	st := resolver.Stats()
	fmt.Printf("\nresolver stats: client=%d upstream=%d hits=%d negative-hits=%d\n",
		st.ClientQueries, st.UpstreamQueries, st.CacheHits, st.NegativeHits)
}

func render(res dikes.ResolveResult) string {
	if len(res.Answers) == 0 {
		return "(no data)"
	}
	last := res.Answers[len(res.Answers)-1]
	return fmt.Sprintf("%v (TTL %d)", last.Data, last.TTL)
}
