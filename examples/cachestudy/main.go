// Cache study: the paper's §3 question — "from a user point-of-view, can
// we rely on recursive caching?" — answered on a small emulated vantage
// point population, for a sweep of TTLs.
package main

import (
	"fmt"
	"time"

	dikes "repro"
)

func main() {
	fmt.Println("warm-cache behavior by TTL (600 probes, 20-minute probing):")
	fmt.Printf("%8s %8s %8s %8s %8s %9s %12s\n",
		"TTL", "AA", "CC", "AC", "CA", "miss", "TTL-altered")

	var results []*dikes.CachingResult
	for _, ttl := range []uint32{60, 1800, 3600, 86400} {
		res := dikes.RunCaching(dikes.CachingConfig{
			Probes: 600, TTL: ttl,
			ProbeInterval: 20 * time.Minute, Rounds: 6, Seed: 7,
		})
		results = append(results, res)
		warm := res.Table2.WarmupTTLZone + res.Table2.WarmupTTLAltered
		altered := 0.0
		if warm > 0 {
			altered = float64(res.Table2.WarmupTTLAltered) / float64(warm)
		}
		fmt.Printf("%8d %8d %8d %8d %8d %8.1f%% %11.1f%%\n",
			ttl, res.Table2.AA, res.Table2.CC, res.Table2.AC, res.Table2.CA,
			100*res.MissRate, 100*altered)
	}

	fmt.Println("\nwhere do the cache misses come from? (TTL 3600 run)")
	t3 := results[2].Table3
	fmt.Printf("  total AC answers:        %d\n", t3.ACAnswers)
	fmt.Printf("  via public resolvers:    %d (Google-like: %d, other: %d)\n",
		t3.PublicR1, t3.GoogleR1, t3.OtherPublicR1)
	fmt.Printf("  via non-public paths:    %d (of which %d emerged from Google backends)\n",
		t3.NonPublicR1, t3.GoogleRn)

	fmt.Println("\npaper comparison: ~30% misses, about half via public farms,")
	fmt.Println("TTL truncation rare below one hour and ~30% at one day.")
}
