// Command benchsnap converts `go test -bench` output on stdin into a JSON
// snapshot: {"BenchmarkName": {"ns_per_op": ..., "bytes_per_op": ...,
// "allocs_per_op": ...}}. Only fields present in a line are emitted, so it
// works with and without -benchmem. Custom units reported through
// b.ReportMetric (e.g. "peak_rss_mb", "vps") land in a "metrics" object.
// Used by scripts/bench_snapshot.sh to record BENCH_parallel.json and
// BENCH_scale.json.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds b.ReportMetric units keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}

	// Emit with sorted keys so snapshots diff cleanly.
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make(map[string]result, len(results))
	for _, name := range names {
		ordered[name] = results[name]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
}

// parseLine extracts one benchmark result line, e.g.
//
//	BenchmarkWirePack-4   3734720   319.6 ns/op   96 B/op   2 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so snapshots compare across hosts.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var r result
	found := false
	for i := 2; i+1 < len(fields); i++ {
		parsed, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		v := parsed // each unit keeps its own pointee
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, found = &v, true
		case "B/op":
			r.BytesPerOp, found = &v, true
		case "allocs/op":
			r.AllocsPerOp, found = &v, true
		default:
			// A custom b.ReportMetric unit; units never start with a
			// digit, which filters out the iteration count and plain
			// numbers inside sub-benchmark names.
			if unit[0] >= '0' && unit[0] <= '9' {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit], found = v, true
		}
	}
	return name, r, found
}
