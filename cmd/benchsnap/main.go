// Command benchsnap converts `go test -bench` output on stdin into a JSON
// snapshot: {"BenchmarkName": {"ns_per_op": ..., "bytes_per_op": ...,
// "allocs_per_op": ...}}. Only fields present in a line are emitted, so it
// works with and without -benchmem. Custom units reported through
// b.ReportMetric (e.g. "peak_rss_mb", "vps") land in a "metrics" object.
// Used by scripts/bench_snapshot.sh to record BENCH_parallel.json,
// BENCH_scale.json, and BENCH_wheel.json.
//
// With -compare old.json the new snapshot is additionally diffed against
// a committed baseline: every benchmark present in both is checked on
// ns_per_op and allocs_per_op, and the process exits nonzero if either
// regressed by more than -max-regress (default 10%). The new snapshot
// still goes to stdout, so the regression gate and the snapshot refresh
// are the same pipeline:
//
//	go test -bench ... | benchsnap -compare BENCH_wheel.json -max-regress 10%
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	NsPerOp     *float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds b.ReportMetric units keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	compareWith := flag.String("compare", "", "baseline snapshot JSON to diff the new results against")
	maxRegress := flag.String("max-regress", "10%", "tolerated ns_per_op / allocs_per_op growth vs the baseline (e.g. 10% or 0.1)")
	flag.Parse()

	results := make(map[string]result)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}

	regressed := false
	if *compareWith != "" {
		tol, err := parseTolerance(*maxRegress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: -max-regress: %v\n", err)
			os.Exit(2)
		}
		baseline, err := loadSnapshot(*compareWith)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			os.Exit(2)
		}
		regressed = compare(os.Stderr, baseline, results, tol)
	}

	// Emit with sorted keys so snapshots diff cleanly.
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make(map[string]result, len(results))
	for _, name := range names {
		ordered[name] = results[name]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	if regressed {
		os.Exit(1)
	}
}

// parseTolerance accepts "10%" or a bare ratio like "0.1".
func parseTolerance(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("cannot parse %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("tolerance %q is negative", s)
	}
	return v, nil
}

func loadSnapshot(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := make(map[string]result)
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return snap, nil
}

// compare diffs every benchmark present in both snapshots on ns_per_op
// and allocs_per_op, writes one line per comparison, and reports whether
// anything regressed beyond tol. Benchmarks only in one snapshot are
// skipped: the regression gate runs a subset of the committed snapshot
// (CI skips the long scale rows), and new benchmarks have no baseline.
func compare(w *os.File, baseline, current map[string]result, tol float64) bool {
	names := make([]string, 0, len(current))
	for name := range current {
		if _, ok := baseline[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(w, "benchsnap: no benchmarks in common with the baseline\n")
		return false
	}
	regressed := false
	for _, name := range names {
		old, new := baseline[name], current[name]
		regressed = compareField(w, name, "ns/op", old.NsPerOp, new.NsPerOp, tol) || regressed
		regressed = compareField(w, name, "allocs/op", old.AllocsPerOp, new.AllocsPerOp, tol) || regressed
	}
	return regressed
}

func compareField(w *os.File, name, unit string, old, new *float64, tol float64) bool {
	if old == nil || new == nil {
		return false
	}
	delta := 0.0
	if *old != 0 {
		delta = (*new - *old) / *old
	}
	verdict := "ok"
	bad := delta > tol
	if bad {
		verdict = fmt.Sprintf("REGRESSION (tolerance %+.1f%%)", tol*100)
	}
	fmt.Fprintf(w, "%-50s %12s %14.1f -> %14.1f  %+7.1f%%  %s\n",
		name, unit, *old, *new, delta*100, verdict)
	return bad
}

// parseLine extracts one benchmark result line, e.g.
//
//	BenchmarkWirePack-4   3734720   319.6 ns/op   96 B/op   2 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so snapshots compare across hosts.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var r result
	found := false
	for i := 2; i+1 < len(fields); i++ {
		parsed, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		v := parsed // each unit keeps its own pointee
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp, found = &v, true
		case "B/op":
			r.BytesPerOp, found = &v, true
		case "allocs/op":
			r.AllocsPerOp, found = &v, true
		default:
			// A custom b.ReportMetric unit; units never start with a
			// digit, which filters out the iteration count and plain
			// numbers inside sub-benchmark names.
			if unit[0] >= '0' && unit[0] <= '9' {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit], found = v, true
		}
	}
	return name, r, found
}
