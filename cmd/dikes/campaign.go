package main

// The campaign subcommand: run declarative scenario-spec files.
//
//	dikes campaign examples/specs/paper        — a directory of specs
//	dikes campaign staged.json transport.json  — individual files
//
// Each spec is loaded (strict JSON), matrix-expanded over its sweep
// axes, compiled onto the Scenario API, and the whole batch runs through
// the campaign runner with fan-out and Ctrl-C cancellation. Stdout is
// the consolidated cross-scenario report, byte-identical for any
// -shards/-workers value. Specs own their engine settings (probes, seed,
// shards); an explicit -shards flag overrides every run for shard-
// invariance checks.

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	dikes "repro"
)

// campaignErrs counts failed campaign runs; main exits non-zero when set.
var campaignErrs int

func runCampaignCmd(ctx context.Context, args []string, shards int, shardsSet bool, workers int) {
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: dikes campaign <spec.json|dir> ...\n")
		os.Exit(2)
	}
	paths, err := specPaths(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "dikes: no *.json spec files found in %s\n", strings.Join(args, " "))
		os.Exit(2)
	}

	var items []dikes.CampaignItem
	for _, p := range paths {
		sp, err := dikes.LoadSpec(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
			os.Exit(2)
		}
		its, err := dikes.CompileSpecAll(sp, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dikes: %s: %v\n", p, err)
			os.Exit(2)
		}
		items = append(items, its...)
	}
	if shardsSet && shards > 0 {
		for i := range items {
			items[i].Config.Shards = shards
		}
	}

	header("campaign: declarative scenario specs")
	fmt.Printf("%d run(s) from %d spec file(s)\n\n", len(items), len(paths))

	// Campaign-wide telemetry counts whole runs, not cells: each finished
	// run ticks once, so -progress shows runs-done/total plus an aggregate
	// event rate and ETA across the batch.
	var prog *dikes.Progress
	if progressOn {
		prog = dikes.NewProgress(nil, "campaign", len(items), 0)
	}
	results, err := dikes.RunCampaignWithProgress(ctx, items, workers, prog)
	prog.Finish()
	if err != nil {
		exitCancelled(err)
	}
	for _, r := range results {
		if r.Outcome != nil && r.Outcome.Report != nil {
			collectReport(r.Outcome.Report)
		}
		if r.Err != nil {
			campaignErrs++
		}
	}
	fmt.Print(dikes.RenderCampaign(results))
	writeCSV("campaign_summary.csv", dikes.CampaignCSV(results))
}

// specPaths resolves the argument list: files stay in the order given,
// directories contribute every *.json under them in lexical walk order,
// so run order — and therefore report bytes — is stable.
func specPaths(args []string) ([]string, error) {
	var paths []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			paths = append(paths, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".json") {
				paths = append(paths, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}
