package main

// The timeline subcommand: run DDoS experiments with per-bucket
// simulated-time series collection and render them as tables, answer-rate
// sparklines, CSV, or JSON.
//
//	dikes timeline                          # experiment H, 1-minute buckets
//	dikes timeline -exp B,H -bucket 5m
//	dikes timeline -exp H -csv tl.csv -json tl.json
//
// The series is collected through the same exact-merge accumulators as
// every other output, so it is byte-identical for any -shards value.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	dikes "repro"
)

func runTimelineCmd(ctx context.Context, args []string, probes int, seed int64, shards int, pop dikes.PopulationConfig) {
	fs := flag.NewFlagSet("dikes timeline", flag.ExitOnError)
	exps := fs.String("exp", "H", "comma-separated DDoS experiments (A-I)")
	bucket := fs.Duration("bucket", time.Minute, "series bin width in simulated time")
	csvPath := fs.String("csv", "", "write the per-bucket series as CSV to this file (one per experiment; multi-exp runs insert the name)")
	jsonPath := fs.String("json", "", "write the timeline as JSON to this file (one per experiment)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dikes [global flags] timeline [-exp A,B,...] [-bucket 1m] [-csv f] [-json f]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	names := strings.Split(*exps, ",")
	header("timeline: per-bucket series over the attack event")
	for _, name := range names {
		name = strings.TrimSpace(name)
		spec, ok := dikes.SpecByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dikes: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("running experiment %s (TTL %d, %.0f%% loss) ...\n",
			spec.Name, spec.TTL, spec.Loss*100)
		cfg := dikes.RunConfig{
			Probes: probes, Seed: seed, Population: pop,
			Timeline: &dikes.TimelineConfig{Bucket: *bucket},
		}
		if shards > 0 {
			cfg.Shards = shards
		}
		prog := newProgress("timeline-"+spec.Name, probes)
		cfg.Progress = prog
		out, err := dikes.Run(ctx, dikes.DDoSScenario(spec), cfg)
		prog.Finish()
		if err != nil {
			exitCancelled(err)
		}
		collectReport(out.Report)
		tl := out.Timeline
		if tl == nil {
			fmt.Fprintf(os.Stderr, "dikes: experiment %s produced no timeline\n", spec.Name)
			os.Exit(1)
		}

		fmt.Printf("\nTimeline (exp %s): per-%s series\n%s", spec.Name, tl.Bucket, tl.Table())
		fmt.Printf("%s\n", tl.Sparkline())

		if *csvPath != "" {
			writeFileFor(*csvPath, spec.Name, len(names) > 1, []byte(tl.CSV()))
		}
		if *jsonPath != "" {
			f, err := createFileFor(*jsonPath, spec.Name, len(names) > 1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
				os.Exit(1)
			}
			err = tl.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", f.Name())
		}
		writeCSV("timeline-exp"+spec.Name+".csv", tl.CSV())
	}
}

// pathFor inserts the experiment name before the extension when a
// multi-experiment run would otherwise overwrite one file.
func pathFor(path, exp string, multi bool) string {
	if !multi {
		return path
	}
	if i := strings.LastIndex(path, "."); i > 0 {
		return path[:i] + "-exp" + exp + path[i:]
	}
	return path + "-exp" + exp
}

func writeFileFor(path, exp string, multi bool, data []byte) {
	p := pathFor(path, exp, multi)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dikes: write %s: %v\n", p, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", p)
}

func createFileFor(path, exp string, multi bool) (*os.File, error) {
	return os.Create(pathFor(path, exp, multi))
}
