// Command dikes runs the paper's experiments and prints the tables and
// figures as text. Subcommands map to the paper's sections:
//
//	dikes caching   — §3 baseline: Tables 1-3, Figures 3/13
//	dikes ddos      — §5/§6 attack emulations: Table 4, Figures 6-12, 14-15
//	dikes glue      — Appendix A: Table 5
//	dikes adversary — adversarial extensions: NXNS amplification,
//	                  off-path poisoning, reflection
//	dikes transport — DoTCP fallback: answer rate vs EDNS0 buffer size,
//	                  TCP fallback coverage, and flood intensity
//	dikes passive   — §4: Figures 4-5
//	dikes retries   — §6.2 / Appendix E: Figure 16
//	dikes campaign  — run declarative scenario-spec files (examples/specs/)
//	dikes timeline  — per-bucket series over the attack event (tables,
//	                  CSV/JSON export, answer-rate sparklines)
//	dikes diff      — compare two run reports / timelines / bench
//	                  snapshots; non-zero exit on regression
//	dikes all       — everything above
//
// Scale with -probes (the paper used ~9200; the default keeps runs quick).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	dikes "repro"
)

func main() {
	probes := flag.Int("probes", 1500, "number of emulated Atlas probes (paper: ~9200; with -shards the engine streams populations up to 1e6)")
	seed := flag.Int64("seed", 42, "simulation seed (runs are deterministic per seed)")
	shards := flag.Int("shards", 0, "concurrent population cells per run (0 = monolithic engine); results are byte-identical for any value")
	exps := flag.String("exp", "A,B,C,D,E,F,G,H,I", "comma-separated DDoS experiments for the ddos subcommand")
	flag.StringVar(exps, "experiment", "A,B,C,D,E,F,G,H,I", "alias for -exp")
	harvest := flag.Bool("harvest", true, "enable NS-record harvesting (Unbound-like population)")
	csvDir := flag.String("csv", "", "also write each figure's data as CSV files into this directory")
	workers := flag.Int("workers", 0, "experiment runs in flight at once (0 = one per core); results are identical for any value")
	reportPath := flag.String("report", "", "write every run's metrics + invariant report as JSON to this file; a failed invariant exits non-zero")
	tracePath := flag.String("trace", "", "record a deterministic query-lifecycle trace of each ddos run as JSONL to this file; implies -shards 1 when -shards is 0")
	traceSample := flag.Int("trace-sample", 0, "trace every Nth probe only (0 or 1 = all probes); SERVFAIL chains are always recorded")
	traceChrome := flag.String("trace-chrome", "", "also export each ddos run's trace as Chrome trace_event JSON (Perfetto-loadable)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	progress := flag.Bool("progress", false, "print live run telemetry (cells done, events/s, peak rss, eta) to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dikes [flags] <caching|ddos|glue|adversary|transport|passive|retries|implications|check|campaign|timeline|trace|diff|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		// `dikes -experiment B -report out.json` with no subcommand means
		// the DDoS emulations.
		expSet, repSet := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "exp", "experiment":
				expSet = true
			case "report":
				repSet = true
			}
		})
		if expSet || repSet {
			cmd = "ddos"
		} else {
			flag.Usage()
			os.Exit(2)
		}
	}

	if cmd == "trace" {
		// Offline trace analysis: no simulation, its own flag set.
		runTraceCmd(flag.Args()[1:])
		return
	}
	if cmd == "diff" {
		// Offline report/timeline/bench comparison: no simulation.
		runDiffCmd(flag.Args()[1:])
		return
	}

	pop := dikes.PopulationConfig{}
	if *harvest {
		pop.Harvest = dikes.HarvestFull
	}
	if *pprofAddr != "" {
		addr, _, err := dikes.ServeTelemetry(*pprofAddr, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dikes: pprof listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics, /debug/pprof/, /debug/vars\n", addr)
	}
	if *tracePath != "" {
		traceOut, traceChromeOut, traceSampleN = *tracePath, *traceChrome, *traceSample
		if *shards == 0 {
			// Tracing records per-cell ring buffers, so it always runs on
			// the sharded engine; one cell preserves the monolithic scale.
			*shards = 1
		}
	}
	progressOn = *progress
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
			os.Exit(1)
		}
		csvOut = *csvDir
	}

	// Ctrl-C / SIGTERM cancels the run cooperatively: in-flight cells and
	// experiment runs finish, partial results are dropped, and the process
	// exits 130 (exitCancelled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	switch cmd {
	case "caching":
		runCaching(ctx, *probes, *seed, *workers, *shards)
	case "ddos":
		runDDoS(ctx, *probes, *seed, *exps, pop, *workers, *shards)
	case "glue":
		runGlue(ctx, *probes, *seed, *shards)
	case "adversary":
		runAdversary(ctx, *probes, *seed, *shards)
	case "transport":
		runTransport(ctx, *probes, *seed, *shards)
	case "passive":
		runPassive(*seed)
	case "retries":
		runRetries(*seed)
	case "implications":
		runImplications(*seed)
	case "check":
		runCheck(ctx, *probes, *seed, *shards, *workers)
	case "timeline":
		runTimelineCmd(ctx, flag.Args()[1:], *probes, *seed, *shards, pop)
	case "campaign":
		shardsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "shards" {
				shardsSet = true
			}
		})
		runCampaignCmd(ctx, flag.Args()[1:], *shards, shardsSet, *workers)
	case "all":
		runCaching(ctx, *probes, *seed, *workers, *shards)
		runDDoS(ctx, *probes, *seed, *exps, pop, *workers, *shards)
		runGlue(ctx, *probes, *seed, *shards)
		runAdversary(ctx, *probes, *seed, *shards)
		runTransport(ctx, *probes, *seed, *shards)
		runPassive(*seed)
		runRetries(*seed)
		runImplications(*seed)
	default:
		fmt.Fprintf(os.Stderr, "dikes: unknown subcommand %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))

	if *reportPath != "" {
		if err := writeReports(*reportPath); err != nil {
			fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
			os.Exit(1)
		}
	}
	if failed := failedInvariants(); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "dikes: %d invariant(s) FAILED:\n", len(failed))
		for _, line := range failed {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		os.Exit(1)
	}
	if campaignErrs > 0 {
		fmt.Fprintf(os.Stderr, "dikes: %d campaign run(s) FAILED\n", campaignErrs)
		os.Exit(1)
	}
}

// exitCancelled reports a context-cancelled run and exits with the
// conventional SIGINT status.
func exitCancelled(err error) {
	if errors.Is(err, dikes.ErrCancelled) {
		fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
	os.Exit(1)
}

// reports accumulates each run's report for -report / invariant checking.
var reports []*dikes.Report

func collectReport(r *dikes.Report) {
	if r != nil {
		reports = append(reports, r)
	}
}

func writeReports(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dikes.WriteReportsJSON(f, reports); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d run report(s))\n", path, len(reports))
	return f.Close()
}

// failedInvariants lists every failed invariant across all collected
// reports, one "run/invariant: detail" line each.
func failedInvariants() []string {
	var out []string
	for _, r := range reports {
		for _, inv := range r.FailedInvariants() {
			out = append(out, fmt.Sprintf("%s/%s: %s", r.Name, inv.Name, inv.Detail))
		}
	}
	return out
}

func header(s string) { fmt.Printf("\n================ %s ================\n", s) }

// csvOut, when set, receives one CSV file per figure.
var csvOut string

// Trace/telemetry settings for the ddos runs (set from flags).
var (
	traceOut       string
	traceChromeOut string
	traceSampleN   int
	progressOn     bool
)

// tracePathFor derives the output path of one experiment's trace: the
// configured path as-is for a single experiment, with "-<name>" spliced
// in before the extension when several run.
func tracePathFor(base, spec string, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "-" + spec + ext
}

// writeTrace exports one run's trace as JSONL (and optionally Chrome
// trace_event JSON).
func writeTrace(td *dikes.TraceData, spec string, multi bool) {
	if td == nil {
		return
	}
	path := tracePathFor(traceOut, spec, multi)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
		os.Exit(1)
	}
	if err := td.WriteJSONL(f); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d trace events)\n", path, td.Len())
	if traceChromeOut == "" {
		return
	}
	cpath := tracePathFor(traceChromeOut, spec, multi)
	cf, err := os.Create(cpath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes: %v\n", err)
		os.Exit(1)
	}
	if err := td.WriteChrome(cf); err == nil {
		err = cf.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes: write %s: %v\n", cpath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", cpath)
}

// newProgress builds the live telemetry tracker of one sharded run;
// nil (telemetry off) unless -progress was given.
func newProgress(label string, probes int) *dikes.Progress {
	if !progressOn {
		return nil
	}
	cells := (probes + dikes.DefaultShardProbes - 1) / dikes.DefaultShardProbes
	if cells < 1 {
		cells = 1
	}
	return dikes.NewProgress(nil, label, cells, 0)
}

func writeCSV(name, content string) {
	if csvOut == "" {
		return
	}
	path := filepath.Join(csvOut, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dikes: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

func runCaching(ctx context.Context, probes int, seed int64, workers, shards int) {
	header("§3 caching baseline (Tables 1-3, Figures 3/13)")
	configs := []struct {
		ttl      uint32
		interval time.Duration
	}{
		{60, 20 * time.Minute},
		{1800, 20 * time.Minute},
		{3600, 20 * time.Minute},
		{86400, 20 * time.Minute},
		{3600, 10 * time.Minute},
	}
	var results []*dikes.CachingResult
	if shards > 0 {
		// Sharded engine: parallelism lives inside each run (cells fan
		// out across cores), so the configs themselves run in sequence.
		for _, c := range configs {
			fmt.Printf("running TTL=%d interval=%v ...\n", c.ttl, c.interval)
			prog := newProgress(fmt.Sprintf("caching-ttl%d", c.ttl), probes)
			out, err := dikes.Run(ctx, dikes.CachingScenario(), dikes.RunConfig{
				Probes: probes, Seed: seed, Shards: shards,
				TTL: c.ttl, ProbeInterval: c.interval, Rounds: 6,
				Progress: prog,
			})
			prog.Finish()
			if err != nil {
				exitCancelled(err)
			}
			results = append(results, out.Caching)
		}
	} else {
		var cfgs []dikes.CachingConfig
		for _, c := range configs {
			fmt.Printf("running TTL=%d interval=%v ...\n", c.ttl, c.interval)
			cfgs = append(cfgs, dikes.CachingConfig{
				Probes: probes, TTL: c.ttl, ProbeInterval: c.interval,
				Rounds: 6, Seed: seed,
			})
		}
		var err error
		results, err = dikes.RunCachingSweepCtx(ctx, cfgs, dikes.RunConfig{Workers: workers})
		if err != nil {
			exitCancelled(err)
		}
	}
	for _, res := range results {
		collectReport(res.Report)
	}
	fmt.Printf("\nTable 1: caching baseline\n%s", dikes.RenderTable1(results))
	fmt.Printf("\nTable 2: answer classification\n%s", dikes.RenderTable2(results))
	fmt.Printf("\nTable 3: AC answers by public resolver\n%s", dikes.RenderTable3(results))
	fmt.Printf("\nFigure 13 (TTL 1800): answer types over time\n%s",
		results[1].Fig13.Table([]string{"AA", "CC", "AC", "CA", "Warmup"}))
}

func runDDoS(ctx context.Context, probes int, seed int64, exps string, pop dikes.PopulationConfig, workers, shards int) {
	header("§5-6 DDoS emulations (Table 4, Figures 6-12, 14-15)")
	var specs []dikes.DDoSSpec
	for _, name := range strings.Split(exps, ",") {
		name = strings.TrimSpace(name)
		spec, ok := dikes.SpecByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dikes: unknown experiment %q\n", name)
			continue
		}
		fmt.Printf("running experiment %s (TTL %d, %.0f%% loss) ...\n",
			spec.Name, spec.TTL, spec.Loss*100)
		specs = append(specs, spec)
	}
	var results []*dikes.DDoSResult
	var worlds []*dikes.ShardedTestbed
	if shards > 0 {
		// Sharded engine: run specs in sequence; each run fans its cells
		// across cores and streams them into bounded-memory accumulators.
		// Worlds are retained only where the drill-down needs them.
		for _, spec := range specs {
			cfg := dikes.RunConfig{
				Probes: probes, Seed: seed, Population: pop,
				Shards: shards, KeepWorlds: spec.Name == "I",
			}
			if traceOut != "" {
				cfg.Trace = &dikes.TraceConfig{SampleEvery: traceSampleN}
			}
			prog := newProgress("ddos-"+spec.Name, probes)
			cfg.Progress = prog
			out, err := dikes.Run(ctx, dikes.DDoSScenario(spec), cfg)
			prog.Finish()
			if err != nil {
				exitCancelled(err)
			}
			if traceOut != "" {
				writeTrace(out.Trace, spec.Name, len(specs) > 1)
			}
			results = append(results, out.DDoS)
			worlds = append(worlds, out.Worlds)
		}
	} else {
		var testbeds []*dikes.Testbed
		results, testbeds = dikes.RunDDoSMatrixWithTestbeds(specs, probes, seed, pop, workers)
		for _, tb := range testbeds {
			worlds = append(worlds, &dikes.ShardedTestbed{
				ShardProbes: probes, Shards: []*dikes.Testbed{tb},
			})
		}
	}
	for _, res := range results {
		collectReport(res.Report)
	}
	for i, res := range results {
		spec := specs[i]

		fmt.Printf("\nFigure 6/8/14 (exp %s): answers per round\n%s", spec.Name,
			res.Answers.Table([]string{"OK", "SERVFAIL", "NoAnswer"}))
		fmt.Printf("Figure 9/15 (exp %s): latency quantiles\n%s", spec.Name, dikes.RenderLatency(res))
		fmt.Printf("Figure 7 (exp %s): answer classes\n%s", spec.Name,
			res.Classes.Table([]string{"AA", "CC", "CA", "AC"}))
		fmt.Printf("Figure 10 (exp %s): queries at the authoritatives\n%s", spec.Name,
			res.AuthQueries.Table([]string{"NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"}))
		fmt.Printf("Figure 11 (exp %s): per-probe amplification\n%s", spec.Name,
			dikes.RenderAmplification(res))
		fmt.Printf("Figure 12 (exp %s): unique Rn\n%s", spec.Name, dikes.RenderUniqueRn(res))
		writeCSV("fig-answers-exp"+spec.Name+".csv",
			dikes.SeriesCSV(res.Answers, []string{"OK", "SERVFAIL", "NoAnswer"}))
		writeCSV("fig9-latency-exp"+spec.Name+".csv", dikes.LatencyCSV(res))
		writeCSV("fig10-authload-exp"+spec.Name+".csv",
			dikes.SeriesCSV(res.AuthQueries, []string{"NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"}))
		writeCSV("fig11-amplification-exp"+spec.Name+".csv", dikes.AmplificationCSV(res))
		writeCSV("fig12-uniquern-exp"+spec.Name+".csv", dikes.UniqueRnCSV(res))
		if spec.Name == "I" && worlds[i] != nil {
			ref := worlds[i].BusiestProbe()
			fmt.Printf("Table 7 (exp I): per-probe drill-down\n%s",
				dikes.RenderTable7(worlds[i].PerProbe(res, ref)))
		}
	}
	fmt.Printf("\nTable 4: experiment matrix\n%s", dikes.RenderTable4(results))
}

func runGlue(ctx context.Context, probes int, seed int64, shards int) {
	header("Appendix A: glue vs authoritative TTL (Table 5)")
	prog := newProgress("glue", probes)
	out, err := dikes.Run(ctx, dikes.GlueScenario(), dikes.RunConfig{
		Probes: probes, Seed: seed, Shards: shards, Progress: prog,
	})
	prog.Finish()
	if err != nil {
		exitCancelled(err)
	}
	collectReport(out.Report)
	fmt.Print(dikes.RenderTable5(out.Glue))
}

func runAdversary(ctx context.Context, probes int, seed int64, shards int) {
	header("adversary family: NXNS amplification, off-path poisoning, reflection")

	// One sharded (or monolithic, shards=0) run per scenario; each gets
	// its own trace file when -trace is set, named after the scenario.
	run := func(sc dikes.Scenario) *dikes.Outcome {
		cfg := dikes.RunConfig{Probes: probes, Seed: seed, Shards: shards}
		if traceOut != "" {
			cfg.Trace = &dikes.TraceConfig{SampleEvery: traceSampleN}
		}
		prog := newProgress(sc.Name(), probes)
		cfg.Progress = prog
		out, err := dikes.Run(ctx, sc, cfg)
		prog.Finish()
		if err != nil {
			exitCancelled(err)
		}
		if traceOut != "" {
			writeTrace(out.Trace, sc.Name(), true)
		}
		collectReport(out.Report)
		return out
	}

	fmt.Printf("\nNXNS-style referral amplification vs delegation width\n")
	for _, k := range []int{0, 5} {
		out := run(dikes.NXNSScenario(dikes.NXNSSpec{MaxFetch: k}))
		fmt.Print(dikes.RenderNXNS(out.NXNS))
		fmt.Println()
	}

	fmt.Printf("off-path poisoning: success vs query-ID entropy and bailiwick checking\n")
	var poisons []*dikes.PoisonResult
	for _, spec := range []dikes.PoisonSpec{
		{NoBailiwick: true},
		{},
		{RandomIDs: true, NoBailiwick: true},
		{RandomIDs: true},
	} {
		out := run(dikes.PoisonScenario(spec))
		poisons = append(poisons, out.Poison)
	}
	fmt.Print(dikes.RenderPoison(poisons))

	fmt.Printf("\nreflection: victim-side amplification by query shape\n")
	out := run(dikes.ReflectScenario(dikes.ReflectSpec{}))
	fmt.Print(dikes.RenderReflect(out.Reflect))
}

func runTransport(ctx context.Context, probes int, seed int64, shards int) {
	header("transport family: EDNS0 buffers, truncation, and DoTCP fallback")

	run := func(sc dikes.Scenario) *dikes.Outcome {
		cfg := dikes.RunConfig{Probes: probes, Seed: seed, Shards: shards}
		if traceOut != "" {
			cfg.Trace = &dikes.TraceConfig{SampleEvery: traceSampleN}
		}
		prog := newProgress(sc.Name(), probes)
		cfg.Progress = prog
		out, err := dikes.Run(ctx, sc, cfg)
		prog.Finish()
		if err != nil {
			exitCancelled(err)
		}
		if traceOut != "" {
			writeTrace(out.Trace, sc.Name(), true)
		}
		collectReport(out.Report)
		return out
	}

	fmt.Printf("\nanswer rate per (EDNS0 buffer, fallback coverage) population\n")
	for _, flood := range []float64{0, 0.5, 0.9} {
		out := run(dikes.TransportScenario(dikes.TransportSpec{Flood: flood}))
		fmt.Print(dikes.RenderTransport(out.Transport))
		fmt.Println()
	}
}

func runPassive(seed int64) {
	header("§4 production zones (Figures 4-5)")
	nl := dikes.RunNl(dikes.NlConfig{Seed: seed})
	fmt.Printf("Figure 4: ECDF of median inter-arrival at .nl (TTL 3600)\n")
	for _, p := range nl.ECDF.Points(20) {
		fmt.Printf("  dt<=%7.0fs  cdf=%.3f\n", p.X, p.Y)
	}
	fmt.Printf("closely-timed excluded: %.1f%%  at-TTL: %.1f%%  early re-query: %.1f%%\n",
		100*nl.Analysis.ExcludedFrac, 100*nl.FracAtTTL, 100*nl.FracBelowTTL)
	writeCSV("fig4-nl-ecdf.csv", dikes.ECDFCSV(nl.ECDF, 100))

	root := dikes.RunRoot(dikes.RootConfig{Seed: seed})
	writeCSV("fig5-root-all.csv", dikes.ECDFCSV(root.All, 100))
	fmt.Printf("\nFigure 5: queries per recursive for the nl DS at the roots\n")
	fmt.Printf("single-query recursives: %.1f%%  heaviest source: %d queries/day\n",
		100*root.FracSingleObserved, root.MaxObserved)
	for i, e := range root.PerLetter {
		fmt.Printf("  letter %2d: P(n<=1)=%.3f P(n<=5)=%.3f P(n<=30)=%.3f\n",
			i, e.At(1), e.At(5), e.At(30))
	}
}

func runCheck(ctx context.Context, probes int, seed int64, shards, workers int) {
	header("reproduction self-test (paper claims vs this run)")
	out, err := dikes.Run(ctx, dikes.CheckScenario(), dikes.RunConfig{
		Probes: probes, Seed: seed, Shards: shards, Workers: workers,
	})
	if err != nil {
		exitCancelled(err)
	}
	table, ok := dikes.RenderCheck(out.Check)
	fmt.Print(table)
	if !ok {
		fmt.Println("\nself-test FAILED")
		os.Exit(1)
	}
	fmt.Println("\nall claims reproduced")
}

func runImplications(seed int64) {
	header("§8 implications: root-like vs CDN-like under attack")
	res := dikes.RunImplications(dikes.ImplicationsConfig{Seed: seed})
	fmt.Print(dikes.RenderImplications(res))
}

func runRetries(seed int64) {
	header("§6.2 / Appendix E: software retries (Figure 16)")
	for _, profile := range []dikes.RetryProfile{dikes.BINDLike(), dikes.UnboundLike()} {
		for _, down := range []bool{false, true} {
			res := dikes.RunRetryTrials(profile, down, 100, seed)
			state := "up  "
			if down {
				state = "down"
			}
			fmt.Printf("%-8s %s  root=%5.1f  net=%5.1f  cachetest.net=%5.1f  total=%5.1f  answered=%d/%d\n",
				profile.Name, state, res.Mean.Root, res.Mean.Net, res.Mean.Target,
				res.Mean.Total(), res.Answered, res.Trials)
		}
	}
}
