package main

// The diff subcommand: offline comparison of two observability documents
// — run reports (-report JSON), timelines (dikes timeline -json), or
// bench snapshots (cmd/benchsnap) — with per-metric tolerances. Exits 1
// when any metric regressed, which makes it a CI gate:
//
//	dikes diff old-report.json new-report.json
//	dikes diff -tol 2% BENCH_observe.json new-bench.json
//	dikes diff -tol 0 -key-tol 'rtt_ms=5%' old.json new.json
//
// Reports and timelines are deterministic, so their default tolerance is
// 0 (any change in either direction regresses); bench snapshots flag
// increases only.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/regress"
)

func runDiffCmd(args []string) {
	var keyTols multiFlag
	fs := flag.NewFlagSet("dikes diff", flag.ExitOnError)
	tol := fs.String("tol", "0", "tolerated relative change (e.g. 2% or 0.02); bench snapshots flag increases only, reports/timelines any direction")
	fs.Var(&keyTols, "key-tol", "per-metric override as substring=tolerance (repeatable, longest substring wins)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dikes diff [-tol 2%%] [-key-tol pat=tol ...] <old.json> <new.json>\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}

	opts, err := diffOptions(*tol, keyTols)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes diff: %v\n", err)
		os.Exit(2)
	}
	oldDoc, err := regress.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes diff: %s: %v\n", fs.Arg(0), err)
		os.Exit(2)
	}
	newDoc, err := regress.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dikes diff: %s: %v\n", fs.Arg(1), err)
		os.Exit(2)
	}
	if oldDoc.Kind != newDoc.Kind {
		fmt.Fprintf(os.Stderr, "dikes diff: comparing a %s document against a %s document\n",
			oldDoc.Kind, newDoc.Kind)
		os.Exit(2)
	}

	deltas := regress.Compare(oldDoc, newDoc, opts)
	fmt.Printf("dikes diff (%s): %s vs %s\n%s", oldDoc.Kind, fs.Arg(0), fs.Arg(1),
		regress.Render(deltas))
	if regress.AnyRegressed(deltas) {
		fmt.Fprintf(os.Stderr, "dikes diff: regression detected\n")
		os.Exit(1)
	}
}

// diffOptions lowers the flag strings onto regress.Options.
func diffOptions(tol string, keyTols multiFlag) (regress.Options, error) {
	opts := regress.Options{}
	t, err := parseTol(tol)
	if err != nil {
		return opts, fmt.Errorf("-tol: %v", err)
	}
	opts.Tolerance = t
	for _, kv := range keyTols {
		pat, val, ok := strings.Cut(kv, "=")
		if !ok || pat == "" {
			return opts, fmt.Errorf("-key-tol %q: want substring=tolerance", kv)
		}
		t, err := parseTol(val)
		if err != nil {
			return opts, fmt.Errorf("-key-tol %q: %v", kv, err)
		}
		if opts.PerKey == nil {
			opts.PerKey = make(map[string]float64)
		}
		opts.PerKey[pat] = t
	}
	return opts, nil
}

// parseTol accepts "2%" or "0.02".
func parseTol(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q", s)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("tolerance must be non-negative, got %s", s)
	}
	return v, nil
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
