package main

// The trace subcommand analyzes a JSONL trace recorded with -trace:
//
//	dikes trace run.jsonl                  — summary (event mix, spans, latency)
//	dikes trace -probe 17 run.jsonl        — one probe's event timeline
//	dikes trace -fail run.jsonl            — explain the first failing query
//	dikes trace -validate run.jsonl        — structural checks (exit 1 on problems)
//	dikes trace -chrome out.json run.jsonl — convert to Chrome trace_event JSON
//	dikes trace -validate-chrome out.json  — check a Chrome export
//
// All modes are offline: they read the trace file and never run a
// simulation, so analysis of a million-VP run costs only the file I/O.

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	dikes "repro"
)

func runTraceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	probe := fs.Int("probe", -1, "print this probe's event timeline")
	cell := fs.Int("cell", 0, "cell index for -probe (default 0)")
	failMode := fs.Bool("fail", false, "reconstruct the first failing query's full event chain")
	validate := fs.Bool("validate", false, "check trace structure; exit 1 on problems")
	chrome := fs.String("chrome", "", "write a Chrome trace_event conversion to this path")
	validateChrome := fs.String("validate-chrome", "", "validate a Chrome trace_event file (no JSONL input needed)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dikes trace [-probe N [-cell C] | -fail | -validate | -chrome OUT | -validate-chrome FILE] trace.jsonl\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if *validateChrome != "" {
		f, err := os.Open(*validateChrome)
		if err != nil {
			fatalf("%v", err)
		}
		n, err := dikes.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("chrome trace OK: %d events\n", n)
		return
	}

	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	td, err := dikes.ReadTraceJSONL(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	switch {
	case *chrome != "":
		out, err := os.Create(*chrome)
		if err != nil {
			fatalf("%v", err)
		}
		if err := td.WriteChrome(out); err == nil {
			err = out.Close()
		}
		if err != nil {
			fatalf("write %s: %v", *chrome, err)
		}
		fmt.Printf("wrote %s\n", *chrome)
	case *validate:
		problems := td.Validate()
		if len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "trace: %d problem(s):\n", len(problems))
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "  %s\n", p)
			}
			os.Exit(1)
		}
		fmt.Printf("trace OK: %d cells, %d events\n", len(td.Cells), td.Len())
	case *probe >= 0:
		printTimeline(td, *cell, uint16(*probe))
	case *failMode:
		explainFirstFailure(td)
	default:
		printSummary(td)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dikes: trace: "+format+"\n", args...)
	os.Exit(1)
}

// printSummary renders the run-level view: the event mix, span outcomes,
// and the answered-query latency digest.
func printSummary(td *dikes.TraceData) {
	dropped := uint64(0)
	for _, c := range td.Cells {
		dropped += c.Dropped
	}
	fmt.Printf("trace: %d cells, %d events", len(td.Cells), td.Len())
	if td.SampleEvery > 1 {
		fmt.Printf(", sampling every %d probes", td.SampleEvery)
	}
	if dropped > 0 {
		fmt.Printf(", %d events overwritten (ring full)", dropped)
	}
	fmt.Println()

	counts := td.TypeCounts()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("\nevent mix:")
	for _, name := range names {
		fmt.Printf("  %-16s %d\n", name, counts[name])
	}

	spans := td.Spans()
	var complete, failed, retries int
	// Answered-query latency digest over the span durations; bounds in
	// milliseconds. Empty and single-observation cases are handled by
	// HistogramSnapshot's documented edge-case rules.
	var lat dikes.Histogram
	lat.Init([]float64{5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000})
	for _, sp := range spans {
		if !sp.Complete {
			continue
		}
		complete++
		retries += sp.Retries
		if sp.Failed() {
			failed++
			continue
		}
		lat.Observe(float64((sp.End - sp.Start) / time.Millisecond))
	}
	fmt.Printf("\nquery spans: %d (%d complete, %d failed, %d retries)\n",
		len(spans), complete, failed, retries)
	sum := lat.Snapshot().Summarize()
	fmt.Printf("answered latency (ms): n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f\n",
		sum.Count, sum.Mean, sum.P50, sum.P90, sum.P99)
}

// printTimeline dumps one probe's events in order.
func printTimeline(td *dikes.TraceData, cell int, probe uint16) {
	events := td.Timeline(cell, probe)
	if len(events) == 0 {
		fatalf("no events for probe %d in cell %d", probe, cell)
	}
	fmt.Printf("probe %d (cell %d): %d events\n", probe, cell, len(events))
	for _, ev := range events {
		fmt.Println(dikes.FormatTraceEvent(ev))
	}
}

// explainFirstFailure answers "why did probe P fail at time T": it finds
// the earliest failed query span and prints every event in its window —
// the retry chain, cache lookups, upstream queries, netsim drops, and
// the attack edges that explain them.
func explainFirstFailure(td *dikes.TraceData) {
	sp, ok := td.FirstFailure()
	kind := "failure"
	if !ok {
		// Adversary traces: a poisoned query completes "ok" (the stub
		// cannot tell), so surface the earliest hijacked span instead.
		if sp, ok = td.FirstHijack(); ok {
			kind = "hijack (spoofed answer accepted)"
		}
	}
	if !ok {
		fmt.Println("no failing or hijacked query spans in this trace")
		return
	}
	fmt.Printf("first %s: probe %d (cell %d), query %q, outcome %s after %d retries\n",
		kind, sp.Probe, sp.Cell, sp.Name, sp.Outcome, sp.Retries)
	fmt.Printf("window: %v .. %v (sim time since run start)\n\n", sp.Start, sp.End)
	for _, ev := range td.Explain(sp) {
		fmt.Println(dikes.FormatTraceEvent(ev))
	}
}
