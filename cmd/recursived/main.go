// Command recursived runs the caching recursive resolver engine on real
// UDP. It resolves iteratively from the configured root hints, or
// forwards to upstream resolvers, with the same cache/retry/serve-stale
// behavior the simulations study:
//
//	recursived -listen :5301 -hint 127.0.0.1:5300
//	recursived -listen :5301 -forward 127.0.0.1:5302 -forward 127.0.0.1:5303
//	recursived -listen :5301 -hint 127.0.0.1:5300 -serve-stale -max-ttl 1h
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/recursive"
	"repro/internal/telemetry"
	"repro/internal/udprun"
)

type addrFlags []string

func (a *addrFlags) String() string     { return fmt.Sprint(*a) }
func (a *addrFlags) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	var hints, forwards addrFlags
	listen := flag.String("listen", ":5301", "UDP listen address")
	tcp := flag.Bool("tcp", true, "also serve DNS over TCP on the same address")
	serveStale := flag.Bool("serve-stale", false, "answer with expired data when upstreams fail")
	maxTTL := flag.Duration("max-ttl", 0, "cap cached TTLs (0 = honor zone TTLs)")
	minTTL := flag.Duration("min-ttl", 0, "floor for cached TTLs")
	shards := flag.Int("shards", 1, "independent cache shards (fragmentation emulation)")
	attempts := flag.Int("attempts", 0, "upstream tries per fetch (0 = default)")
	harvest := flag.Bool("harvest", false, "background-fetch NS records of learned zones (Unbound-like)")
	flag.Var(&hints, "hint", "root hint ip:port (repeatable)")
	flag.Var(&forwards, "forward", "upstream resolver ip:port; enables forwarding mode (repeatable)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	flag.Parse()

	if len(hints) == 0 && len(forwards) == 0 {
		fmt.Fprintln(os.Stderr, "recursived: need -hint or -forward")
		flag.Usage()
		os.Exit(2)
	}
	cfg := recursive.Config{
		Cache: cache.Config{
			MaxTTL: *maxTTL, MinTTL: *minTTL, Shards: *shards,
			Capacity: 1 << 20,
		},
		ServeStale:  *serveStale,
		MaxAttempts: *attempts,
		Seed:        time.Now().UnixNano(),
	}
	if *harvest {
		cfg.Harvest = recursive.HarvestFull
	}
	for _, h := range hints {
		cfg.RootHints = append(cfg.RootHints, recursive.ServerHint{
			Name: "hint." + h + ".", Addr: netsim.Addr(h),
		})
	}
	for _, f := range forwards {
		cfg.Forwarders = append(cfg.Forwarders, netsim.Addr(f))
	}

	loop := udprun.NewLoop()
	conn, err := udprun.Listen(*listen, loop)
	if err != nil {
		log.Fatalf("recursived: %v", err)
	}
	res := recursive.NewResolver(udprun.Clock{Loop: loop}, cfg)
	res.SetConn(conn)

	if *pprofAddr != "" {
		// Resolver counters are atomics, so the scrape handler may read
		// them from its own goroutine while the engine loop runs.
		addr, _, err := telemetry.Serve(*pprofAddr, func() metrics.Snapshot {
			reg := metrics.NewRegistry()
			res.CollectMetrics(reg.Scope("resolver"))
			res.Cache().CollectMetrics(reg.Scope("cache"))
			return reg.Snapshot()
		})
		if err != nil {
			log.Fatalf("recursived: pprof listen: %v", err)
		}
		log.Printf("recursived: telemetry at http://%s/metrics and /debug/pprof/", addr)
	}

	mode := "iterative"
	if len(forwards) > 0 {
		mode = "forwarding"
	}
	log.Printf("recursive resolver (%s) listening on %s", mode, conn.Addr())

	if *tcp {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("recursived: tcp: %v", err)
		}
		log.Printf("also serving TCP on %s", ln.Addr())
		go func() {
			err := udprun.ServeTCP(ln, func(payload []byte) []byte {
				q, err := dnswire.Unpack(payload)
				if err != nil {
					return nil
				}
				// Bridge the connection goroutine to the engine loop.
				ch := make(chan []byte, 1)
				loop.Post(func() {
					res.HandleQuery(q, func(m *dnswire.Message) {
						if wire, err := m.Pack(); err == nil {
							ch <- wire
						} else {
							ch <- nil
						}
					})
				})
				return <-ch
			})
			if err != nil {
				log.Printf("recursived: tcp serve ended: %v", err)
			}
		}()
	}

	go func() {
		err := conn.Serve(res.Receive)
		log.Printf("recursived: serve loop ended: %v", err)
		loop.Close()
	}()

	// Periodic stats line.
	go func() {
		for {
			time.Sleep(30 * time.Second)
			loop.Post(func() {
				s := res.Stats()
				log.Printf("stats: client=%d hits=%d misses=%d upstream=%d retries=%d stale=%d servfail=%d",
					s.ClientQueries, s.CacheHits, s.CacheMisses,
					s.UpstreamQueries, s.UpstreamRetries, s.StaleServes, s.ServFails)
			})
		}
	}()
	loop.Run()
}
