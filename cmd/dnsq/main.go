// Command dnsq is a dig-like query client for the servers in this
// repository (or any DNS server speaking UDP):
//
//	dnsq @127.0.0.1:5301 AAAA 1414.cachetest.nl
//	dnsq -timeout 2s -retries 2 @127.0.0.1:5300 NS cachetest.nl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dnswire"
	"repro/internal/netsim"
	"repro/internal/stub"
	"repro/internal/udprun"
)

func main() {
	timeout := flag.Duration("timeout", 5*time.Second, "query timeout")
	retries := flag.Int("retries", 0, "extra attempts on timeout")
	useTCP := flag.Bool("tcp", false, "query over TCP instead of UDP")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dnsq [flags] @server:port [type] name\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var server, qtypeStr, name string
	for _, arg := range flag.Args() {
		switch {
		case strings.HasPrefix(arg, "@"):
			server = strings.TrimPrefix(arg, "@")
		case qtypeStr == "" && dnswire.ParseType(strings.ToUpper(arg)) != dnswire.TypeNone && name == "":
			qtypeStr = strings.ToUpper(arg)
		default:
			name = arg
		}
	}
	if server == "" || name == "" {
		flag.Usage()
		os.Exit(2)
	}
	qtype := dnswire.TypeA
	if qtypeStr != "" {
		qtype = dnswire.ParseType(qtypeStr)
	}

	if *useTCP {
		queryTCP(server, name, qtype, *timeout)
		return
	}

	loop := udprun.NewLoop()
	conn, err := udprun.Listen("0.0.0.0:0", loop)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
		os.Exit(1)
	}
	client := stub.New(udprun.Clock{Loop: loop}, stub.Config{Timeout: *timeout, Retries: *retries})
	client.SetConn(conn)
	go conn.Serve(client.Receive)

	done := make(chan stub.Result, 1)
	loop.Post(func() {
		client.Query(netsim.Addr(server), name, qtype, func(r stub.Result) { done <- r })
	})
	go loop.Run()

	r := <-done
	if r.Err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: %v (after %v)\n", r.Err, r.RTT)
		os.Exit(1)
	}
	if r.Msg.Truncated {
		fmt.Fprintln(os.Stderr, ";; truncated over UDP, retrying over TCP")
		queryTCP(server, name, qtype, *timeout)
		return
	}
	fmt.Printf(";; answer from %s in %v\n%s", r.Server, r.RTT.Round(time.Microsecond), r.Msg)
}

// queryTCP performs the RFC 7766 exchange and prints the answer.
func queryTCP(server, name string, qtype dnswire.Type, timeout time.Duration) {
	q := dnswire.NewQuery(1, name, qtype)
	wire, err := q.Pack()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	out, err := udprun.TCPQuery(server, wire, timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: tcp: %v\n", err)
		os.Exit(1)
	}
	m, err := dnswire.Unpack(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dnsq: tcp: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf(";; answer from %s over TCP in %v\n%s", server,
		time.Since(start).Round(time.Microsecond), m)
}
