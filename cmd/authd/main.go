// Command authd serves one or more DNS zones authoritatively over real
// UDP, using the same engine the simulations run. It can also emulate a
// DDoS on itself by dropping a fraction of inbound queries, so the
// paper's client-side experiments can be tried against live software:
//
//	authd -listen :5300 -zone cachetest.nl.zone -origin cachetest.nl
//	authd -listen :5300 -zone z1.zone -zone z2.zone -loss 0.9
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"

	"repro/internal/authoritative"
	"repro/internal/dnswire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/udprun"
	"repro/internal/zone"
)

type zoneFlags []string

func (z *zoneFlags) String() string     { return fmt.Sprint(*z) }
func (z *zoneFlags) Set(v string) error { *z = append(*z, v); return nil }

func main() {
	var zoneFiles zoneFlags
	listen := flag.String("listen", ":5300", "UDP listen address")
	tcp := flag.Bool("tcp", true, "also serve DNS over TCP on the same address")
	axfr := flag.Bool("axfr", false, "allow zone transfers (AXFR) over TCP")
	origin := flag.String("origin", "", "default origin for zone files without $ORIGIN")
	loss := flag.Float64("loss", 0, "fraction of inbound queries to drop (DDoS emulation)")
	seed := flag.Int64("seed", 1, "seed for the loss coin")
	flag.Var(&zoneFiles, "zone", "zone file in master format (repeatable)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	flag.Parse()

	if len(zoneFiles) == 0 {
		fmt.Fprintln(os.Stderr, "authd: at least one -zone file is required")
		flag.Usage()
		os.Exit(2)
	}
	if *loss < 0 || *loss > 1 {
		log.Fatalf("authd: -loss %v out of range [0,1]", *loss)
	}
	var zones []*zone.Zone
	for _, file := range zoneFiles {
		f, err := os.Open(file)
		if err != nil {
			log.Fatalf("authd: %v", err)
		}
		z, err := zone.Parse(f, *origin)
		f.Close()
		if err != nil {
			log.Fatalf("authd: %s: %v", file, err)
		}
		zones = append(zones, z)
		log.Printf("loaded zone %s (%d records) from %s", z.Origin(), z.Len(), file)
	}

	srv := authoritative.New(zones...)
	if *pprofAddr != "" {
		addr, _, err := telemetry.Serve(*pprofAddr, func() metrics.Snapshot {
			reg := metrics.NewRegistry()
			srv.CollectMetrics(reg.Scope("authoritative"))
			return reg.Snapshot()
		})
		if err != nil {
			log.Fatalf("authd: pprof listen: %v", err)
		}
		log.Printf("authd: telemetry at http://%s/metrics and /debug/pprof/", addr)
	}
	loop := udprun.NewLoop()
	conn, err := udprun.Listen(*listen, loop)
	if err != nil {
		log.Fatalf("authd: %v", err)
	}
	rng := rand.New(rand.NewSource(*seed))
	log.Printf("authoritative listening on %s (inbound loss %.0f%%)", conn.Addr(), *loss*100)

	if *tcp {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("authd: tcp: %v", err)
		}
		log.Printf("also serving TCP on %s (axfr: %v)", ln.Addr(), *axfr)
		go func() {
			err := udprun.ServeTCPStream(ln, func(payload []byte) [][]byte {
				if *axfr {
					if q, err := dnswire.Unpack(payload); err == nil {
						if msgs := srv.HandleAXFR(q); msgs != nil {
							var frames [][]byte
							for _, m := range msgs {
								if wire, err := m.Pack(); err == nil {
									frames = append(frames, wire)
								}
							}
							return frames
						}
					}
				}
				if out := srv.HandleWireTCP(payload); out != nil {
					return [][]byte{out}
				}
				return nil
			})
			if err != nil {
				log.Printf("authd: tcp serve ended: %v", err)
			}
		}()
	}

	go func() {
		err := conn.Serve(func(src netsim.Addr, payload []byte) {
			if *loss > 0 && rng.Float64() < *loss {
				return // emulated DDoS drop
			}
			if out := srv.HandleWire(payload); out != nil {
				conn.Send(src, out)
			}
		})
		log.Printf("authd: serve loop ended: %v", err)
		loop.Close()
	}()
	loop.Run()
}
