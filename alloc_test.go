package dikes_test

import (
	"testing"
	"time"

	dikes "repro"
)

// resolveAllocBudget is the hard per-resolution allocation ceiling for
// the BenchmarkResolveThroughSim workload: building a one-probe testbed,
// attaching a cold-cache resolver, and resolving one name through the
// full simulated root -> nl -> cachetest.nl hierarchy. The timing-wheel
// engine, the arena-backed caches, and the append-into wire codec hold
// the measured cost at ~91 allocations; the ceiling leaves headroom for
// runtime jitter but fails tier-1 `go test` on any real regression
// (reintroducing a per-event closure or a per-packet payload copy costs
// tens of allocations per resolution, far above the slack here).
const resolveAllocBudget = 120

// TestResolveAllocBudget pins the per-resolution allocation count so
// allocation regressions on the hot path surface in plain `go test`,
// not only in benchmark runs someone has to remember to compare.
func TestResolveAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting is noisy under -short race harnesses")
	}
	run := func(seed int64) {
		tb := dikes.NewTestbed(dikes.TestbedConfig{Probes: 1, Seed: seed})
		r := dikes.NewResolver(tb.Clk, dikes.ResolverConfig{
			RootHints: []dikes.ServerHint{{Name: "a.root-servers.net.", Addr: "198.41.0.4"}},
			Seed:      seed,
		})
		r.Attach(tb.Net, "bench-res")
		done := false
		r.Resolve("1.cachetest.nl.", dikes.TypeAAAA, 0, func(res dikes.ResolveResult) {
			done = !res.ServFail
		})
		tb.Clk.RunFor(time.Hour)
		if !done {
			t.Fatal("resolution failed")
		}
	}
	// Warm the global pools (packet buffers, wire scratch, zone template
	// memos) exactly as a benchmark's early iterations would; steady
	// state is what the budget governs.
	var seed int64
	for ; seed < 3; seed++ {
		run(seed)
	}
	got := testing.AllocsPerRun(10, func() {
		run(seed)
		seed++
	})
	if got > resolveAllocBudget {
		t.Fatalf("resolution allocates %.0f objects/op, budget is %d "+
			"(see BenchmarkResolveThroughSim; raise only with a bench_test justification)",
			got, resolveAllocBudget)
	}
	t.Logf("resolution allocates %.0f objects/op (budget %d)", got, resolveAllocBudget)
}
