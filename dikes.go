// Package dikes is a controlled-experiment testbed for studying DNS
// resilience under DDoS, reproducing Moura et al., "When the Dike Breaks:
// Dissecting DNS Defenses During DDoS" (ACM IMC 2018 / ISI-TR-725).
//
// The library contains a complete, from-scratch DNS ecosystem:
//
//   - a wire-format codec (RFC 1034/1035 with name compression),
//   - a zone store with master-file parsing and full lookup semantics,
//   - an authoritative server engine,
//   - a caching recursive resolver engine with retries, negative caching,
//     credibility ranking, serve-stale, TTL rewriting, fragmented caches,
//     and multi-level forwarding,
//   - a stub resolver,
//   - a deterministic discrete-event network simulator with programmable
//     inbound loss (the DDoS emulation dial),
//   - an Atlas-like vantage-point fleet and the paper's AA/CC/AC/CA answer
//     classifier,
//   - experiment runners for every table and figure in the paper.
//
// Most users start from the experiment runners:
//
//	res := dikes.RunCaching(dikes.CachingConfig{Probes: 1000, TTL: 3600})
//	fmt.Print(dikes.RenderTable2([]*dikes.CachingResult{res}))
//
// or emulate an attack:
//
//	spec, _ := dikes.SpecByName("H") // 90% loss, TTL 1800
//	res := dikes.RunDDoS(spec, 1000, 42, dikes.PopulationConfig{})
//	fmt.Printf("failure rate under attack: %.0f%%\n", 100*res.FailureRate(9))
//
// For custom topologies, the engine types (Resolver, Authoritative, Stub,
// Network, virtual Clock, Zone) are exported below; see the examples/
// directory.
package dikes

import (
	"repro/internal/authoritative"
	"repro/internal/cache"
	"repro/internal/classify"
	"repro/internal/clock"
	"repro/internal/ddos"
	"repro/internal/dnssec"
	"repro/internal/dnswire"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/passive"
	"repro/internal/recursive"
	"repro/internal/retrymodel"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/stub"
	"repro/internal/telemetry"
	"repro/internal/timeline"
	"repro/internal/trace"
	"repro/internal/vantage"
	"repro/internal/zone"
)

// Wire protocol (package dnswire).
type (
	// Message is a DNS message.
	Message = dnswire.Message
	// Question is a DNS question-section entry.
	Question = dnswire.Question
	// RR is a resource record.
	RR = dnswire.RR
	// RData is typed record data.
	RData = dnswire.RData
	// Type is a record type.
	Type = dnswire.Type
	// RCode is a response code.
	RCode = dnswire.RCode
)

// Commonly used record types and response codes.
const (
	TypeA     = dnswire.TypeA
	TypeAAAA  = dnswire.TypeAAAA
	TypeNS    = dnswire.TypeNS
	TypeCNAME = dnswire.TypeCNAME
	TypeSOA   = dnswire.TypeSOA
	TypeTXT   = dnswire.TypeTXT
	TypeDS    = dnswire.TypeDS

	RCodeNoError  = dnswire.RCodeNoError
	RCodeServFail = dnswire.RCodeServFail
	RCodeNXDomain = dnswire.RCodeNXDomain
)

// Wire helpers.
var (
	// NewQuery builds a recursive query message.
	NewQuery = dnswire.NewQuery
	// Unpack parses a wire-format message.
	Unpack = dnswire.Unpack
	// CanonicalName canonicalizes a domain name (lower case, trailing
	// dot).
	CanonicalName = dnswire.CanonicalName
	// MustAddr parses an IP literal or panics.
	MustAddr = dnswire.MustAddr
)

// Simulation substrate.
type (
	// Clock abstracts time for the engines.
	Clock = clock.Clock
	// VirtualClock is the deterministic event-loop clock.
	VirtualClock = clock.Virtual
	// RealClock is the wall clock.
	RealClock = clock.Real
	// Network is the lossy message-level network simulator.
	Network = netsim.Network
	// Addr identifies a simulated host.
	Addr = netsim.Addr
	// Conn is the transport contract engines program against.
	Conn = netsim.Conn
	// Attack is a scheduled DDoS (inbound loss window).
	Attack = ddos.Attack
	// Flood is a volumetric attack expressed as offered load vs capacity.
	Flood = ddos.Flood
)

// Substrate constructors.
var (
	// NewVirtualClock creates a virtual clock starting at a given time.
	NewVirtualClock = clock.NewVirtual
	// NewNetwork creates a simulated network on a clock with a seed.
	NewNetwork = netsim.New
	// ScheduleAttack arms a DDoS on a network.
	ScheduleAttack = ddos.Schedule
	// ScheduleFlood arms a capacity-based volumetric attack.
	ScheduleFlood = ddos.ScheduleFlood
)

// Zone data.
type (
	// Zone stores one DNS zone.
	Zone = zone.Zone
	// ZoneResult is a zone lookup outcome.
	ZoneResult = zone.Result
)

// Zone constructors.
var (
	// NewZone creates an empty zone.
	NewZone = zone.New
	// ParseZone reads RFC 1035 master-file format.
	ParseZone = zone.Parse
	// ParseZoneString is ParseZone on a string.
	ParseZoneString = zone.ParseString
)

// Server and resolver engines.
type (
	// Authoritative is the authoritative server engine.
	Authoritative = authoritative.Server
	// Resolver is the caching recursive resolver engine.
	Resolver = recursive.Resolver
	// ResolverConfig tunes a Resolver.
	ResolverConfig = recursive.Config
	// ServerHint names a root or forwarder server.
	ServerHint = recursive.ServerHint
	// HarvestMode selects NS-record background fetching behavior.
	HarvestMode = recursive.HarvestMode
	// ResolveResult is the outcome of a Resolver.Resolve call.
	ResolveResult = recursive.Result
	// CacheConfig tunes the resolver cache.
	CacheConfig = cache.Config
	// Stub is the client-side stub resolver.
	Stub = stub.Client
	// StubConfig tunes a Stub.
	StubConfig = stub.Config
	// StubResult is a stub query outcome.
	StubResult = stub.Result
)

// Harvest modes.
const (
	HarvestNone = recursive.HarvestNone
	HarvestAAAA = recursive.HarvestAAAA
	HarvestFull = recursive.HarvestFull
)

// DNSSEC (Ed25519, RFC 8080).
type (
	// SigningKey is a zone signing key pair.
	SigningKey = dnssec.Key
)

// DNSSEC helpers.
var (
	// GenerateKey creates an Ed25519 zone key.
	GenerateKey = dnssec.GenerateKey
	// SignZone signs every authoritative RRset in a zone.
	SignZone = dnssec.SignZone
	// VerifyRRSet checks an RRSIG over an RRset.
	VerifyRRSet = dnssec.Verify
	// VerifyDS checks a DNSKEY against its parent-side DS.
	VerifyDS = dnssec.VerifyDS
)

// DNSSEC constants.
const (
	AlgorithmEd25519 = dnssec.AlgorithmEd25519
	FlagZone         = dnssec.FlagZone
	FlagSEP          = dnssec.FlagSEP
)

// Engine constructors.
var (
	// NewAuthoritative creates an authoritative server for zones.
	NewAuthoritative = authoritative.New
	// NewResolver creates a recursive resolver.
	NewResolver = recursive.NewResolver
	// NewStub creates a stub resolver client.
	NewStub = stub.New
)

// Measurement and classification.
type (
	// Probe is an Atlas-like vantage-point probe.
	Probe = vantage.Probe
	// ProbeAnswer is one vantage-point observation.
	ProbeAnswer = vantage.Answer
	// Category is the paper's AA/CC/AC/CA answer class.
	Category = classify.Category
	// ClassifyTracker classifies one vantage point's answer stream.
	ClassifyTracker = classify.Tracker
)

// Scenario API — the unified, cancellable, shard-capable entry point for
// every experiment family (DESIGN.md §11). Construct a Scenario, describe
// the run with a RunConfig, and execute it with Run:
//
//	spec, _ := dikes.SpecByName("H")
//	out, err := dikes.Run(ctx, dikes.DDoSScenario(spec), dikes.RunConfig{
//		Probes: 1_000_000, Seed: 42, Shards: 8,
//	})
//
// Shards > 0 selects the sharded streaming engine: the population is
// split into fixed-size cells that run concurrently and merge into
// bounded-memory accumulators; results are byte-identical for every
// shard count. Shards == 0 runs the legacy monolithic engine.
type (
	// Scenario is a runnable experiment family.
	Scenario = experiment.Scenario
	// RunConfig describes one scenario execution (scale, seed, sharding,
	// cancellation-relevant fan-out width).
	RunConfig = experiment.RunConfig
	// Outcome bundles whichever results the scenario produced plus the
	// merged run report.
	Outcome = experiment.Outcome
	// ShardedTestbed is the retained per-cell worlds of a KeepWorlds run.
	ShardedTestbed = experiment.ShardedTestbed
	// ProbeRef addresses one probe inside a sharded run.
	ProbeRef = experiment.ProbeRef
)

// Scenario constructors and the runner.
var (
	// Run executes a scenario; it returns ErrCancelled-wrapped errors
	// (with partial results) when ctx fires mid-run.
	Run = experiment.Run
	// DDoSScenario is a Table 4 attack emulation as a Scenario.
	DDoSScenario = experiment.DDoSScenario
	// CachingScenario is a §3 caching baseline as a Scenario.
	CachingScenario = experiment.CachingScenario
	// GlueScenario is the Appendix A TTL-trust experiment as a Scenario.
	GlueScenario = experiment.GlueScenario
	// CheckScenario is the reproduction self-test as a Scenario.
	CheckScenario = experiment.CheckScenario

	// NXNSScenario, PoisonScenario, and ReflectScenario are the
	// adversarial scenario family.
	NXNSScenario    = experiment.NXNSScenario
	PoisonScenario  = experiment.PoisonScenario
	ReflectScenario = experiment.ReflectScenario
	// TransportScenario is the DoTCP-fallback resiliency study (buffer
	// size × TCP fallback × flood).
	TransportScenario = experiment.TransportScenario
	// RunDDoSMatrixCtx is the cancellable Table 4 matrix runner.
	RunDDoSMatrixCtx = experiment.RunDDoSMatrixCtx
	// RunCachingSweepCtx is the cancellable §3 sweep runner.
	RunCachingSweepCtx = experiment.RunCachingSweepCtx
	// ReplicateCtx is the cancellable multi-seed replicator.
	ReplicateCtx = experiment.ReplicateCtx
)

// ErrCancelled is returned (wrapped) by Run and the *Ctx fan-outs when
// the context fires; partial results accompany it where possible.
var ErrCancelled = experiment.ErrCancelled

// Sharding limits.
const (
	// DefaultShardProbes is the cell size used when Shards > 0 and
	// ShardProbes is left zero.
	DefaultShardProbes = experiment.DefaultShardProbes
	// MaxShardProbes is the largest allowed cell (probe IDs are
	// cell-local uint16s).
	MaxShardProbes = experiment.MaxShardProbes
)

// Declarative spec + campaign layer: JSON scenario specs (internal/spec)
// compile onto the Scenario API and run as one campaign with a
// consolidated cross-scenario report. `dikes campaign` is the CLI front
// door; examples/specs/ holds the committed paper campaigns.
type (
	// ScenarioSpec is one declarative scenario-spec document.
	ScenarioSpec = spec.Spec
	// CampaignItem is one compiled run of a campaign.
	CampaignItem = experiment.CampaignItem
	// CampaignResult pairs a campaign item with its outcome or error.
	CampaignResult = experiment.CampaignResult
	// PassiveResult bundles the §4 production-zone models.
	PassiveResult = experiment.PassiveResult
	// RetriesResult is the §6.2/Appendix E software-retry matrix.
	RetriesResult = experiment.RetriesResult
	// RetryRow is one profile/state line of the retry study.
	RetryRow = experiment.RetryRow
	// AttackPhase is one time-windowed disruption phase (staged attacks).
	AttackPhase = ddos.Phase
	// AttackPlan schedules a phase list against a testbed's targets.
	AttackPlan = ddos.Plan
	// FailureMode selects a phase's failure mode.
	FailureMode = ddos.FailureMode
)

// Failure modes for staged attack phases.
const (
	// ModeDrop silently drops queries (packet loss).
	ModeDrop = ddos.ModeDrop
	// ModeNXDomain forces NXDOMAIN answers (hijack/poisoning-style).
	ModeNXDomain = ddos.ModeNXDomain
	// ModeServFail forces SERVFAIL answers (broken-resolution-style).
	ModeServFail = ddos.ModeServFail
)

var (
	// LoadSpec reads and strict-parses one spec file.
	LoadSpec = spec.Load
	// ParseSpec strict-parses one spec document.
	ParseSpec = spec.Parse
	// ValidateSpec checks a spec against the schema rules.
	ValidateSpec = spec.Validate
	// ExpandSpec matrix-expands sweep axes into one spec per point.
	ExpandSpec = spec.Expand
	// CompileSpec lowers one expanded spec onto (Scenario, RunConfig).
	CompileSpec = spec.Compile
	// CompileSpecAll expands and compiles a spec into campaign items.
	CompileSpecAll = spec.CompileAll
	// RunCampaign executes campaign items with fan-out + cancellation.
	RunCampaign = experiment.RunCampaign
	// RunCampaignWithProgress adds campaign-wide telemetry (one tick per
	// finished run).
	RunCampaignWithProgress = experiment.RunCampaignWithProgress
	// RenderCampaign formats the consolidated cross-scenario report.
	RenderCampaign = experiment.RenderCampaign
	// CampaignCSV renders the campaign summary as CSV.
	CampaignCSV = experiment.CampaignCSV
	// PassiveScenario, RetriesScenario, and ImplicationsScenario wrap
	// the remaining paper families as Scenarios.
	PassiveScenario      = experiment.PassiveScenario
	RetriesScenario      = experiment.RetriesScenario
	ImplicationsScenario = experiment.ImplicationsScenario
	// RenderPassive and RenderRetries format those families' figures.
	RenderPassive = experiment.RenderPassive
	RenderRetries = experiment.RenderRetries
	// SchedulePhases arms a staged multi-phase disruption on a network.
	SchedulePhases = ddos.SchedulePhases
)

// Experiment runners — one per paper table/figure family.
type (
	// CachingConfig parameterizes a §3 caching baseline run.
	CachingConfig = experiment.CachingConfig
	// CachingResult bundles Tables 1–3 and Figure 3/13 data.
	CachingResult = experiment.CachingResult
	// DDoSSpec is a row of Table 4 (an emulated attack).
	DDoSSpec = experiment.DDoSSpec
	// DDoSResult bundles the attack's client- and server-side series.
	DDoSResult = experiment.DDoSResult
	// PopulationConfig tunes the resolver-population mix.
	PopulationConfig = experiment.PopulationConfig
	// Testbed is the assembled simulated ecosystem.
	Testbed = experiment.Testbed
	// TestbedConfig sizes a testbed.
	TestbedConfig = experiment.TestbedConfig
	// GlueResult is the Appendix A Table 5 outcome.
	GlueResult = experiment.GlueResult
	// Table7 is the Appendix F per-probe drill-down.
	Table7 = experiment.Table7
	// ImplicationsConfig parameterizes the §8 root-vs-CDN scenario.
	ImplicationsConfig = experiment.ImplicationsConfig
	// ImplicationsResult is the §8 scenario outcome.
	ImplicationsResult = experiment.ImplicationsResult
	// NlSimConfig parameterizes the simulation-derived Figure 4 variant.
	NlSimConfig = experiment.NlSimConfig
	// NlSimResult is its outcome.
	NlSimResult = experiment.NlSimResult
	// NXNSSpec shapes the NXNS amplification experiment.
	NXNSSpec = experiment.NXNSSpec
	// NXNSResult is its amplification-vs-width outcome.
	NXNSResult = experiment.NXNSResult
	// PoisonSpec shapes the off-path poisoning experiment.
	PoisonSpec = experiment.PoisonSpec
	// PoisonResult is one defense combo's poisoning outcome.
	PoisonResult = experiment.PoisonResult
	// ReflectSpec shapes the reflection/amplification experiment.
	ReflectSpec = experiment.ReflectSpec
	// ReflectResult is its per-shape amplification outcome.
	ReflectResult = experiment.ReflectResult
	// TransportSpec shapes the DoTCP-fallback transport experiment.
	TransportSpec = experiment.TransportSpec
	// TransportResult is its answer-rate-per-population outcome.
	TransportResult = experiment.TransportResult
	// TransportRow is one (buffer, fallback) population of the result.
	TransportRow = experiment.TransportRow
	// FallbackMode says which legs of the path may retry over TCP.
	FallbackMode = experiment.FallbackMode
	// NlConfig and RootConfig parameterize the §4 passive analyses.
	NlConfig = passive.NlConfig
	// NlResult is the Figure 4 outcome.
	NlResult = passive.NlResult
	// RootConfig parameterizes the Figure 5 synthesis.
	RootConfig = passive.RootConfig
	// RootResult is the Figure 5 outcome.
	RootResult = passive.RootResult
	// RetryProfile models a resolver implementation (§6.2).
	RetryProfile = retrymodel.Profile
	// RetryResult summarizes retry-count trials (Figure 16).
	RetryResult = retrymodel.Result
	// Summary holds latency quantiles (Figure 9).
	Summary = stats.Summary
	// RoundSeries is a per-round labeled counter series.
	RoundSeries = stats.RoundSeries
	// Report is one run's metrics snapshot plus invariant verdicts
	// (DESIGN.md §9); experiment results carry one in their Report field.
	Report = metrics.Report
	// Invariant is a single cross-component accounting check.
	Invariant = metrics.Invariant
	// MetricsSnapshot is a registry snapshot (scopes sorted by name).
	MetricsSnapshot = metrics.Snapshot
	// MetricsRegistry is a named-scope metrics registry.
	MetricsRegistry = metrics.Registry
	// Histogram is a fixed-bounds histogram metric.
	Histogram = metrics.Histogram
	// HistogramSnapshot is a point-in-time histogram view with quantile
	// estimation.
	HistogramSnapshot = metrics.HistogramSnapshot
	// HistogramSummary is the count/mean/P50/P90/P99 digest of a snapshot.
	HistogramSummary = metrics.HistogramSummary
)

// Experiment entry points.
var (
	// RunCaching executes one §3 caching baseline (Tables 1–3).
	RunCaching = experiment.RunCaching
	// RunCachingSweep executes several §3 baselines concurrently.
	RunCachingSweep = experiment.RunCachingSweep
	// RunDDoS executes one Table 4 attack emulation.
	RunDDoS = experiment.RunDDoS
	// RunDDoSWithTestbed also returns the testbed for drill-downs.
	RunDDoSWithTestbed = experiment.RunDDoSWithTestbed
	// RunDDoSMatrix executes several Table 4 attacks concurrently.
	RunDDoSMatrix = experiment.RunDDoSMatrix
	// RunDDoSMatrixWithTestbeds is RunDDoSMatrix plus drill-down testbeds.
	RunDDoSMatrixWithTestbeds = experiment.RunDDoSMatrixWithTestbeds
	// Replicate runs a metric across seeds in parallel and summarizes it.
	Replicate = experiment.Replicate
	// ReplicateWithReports is Replicate plus each seed's run report.
	ReplicateWithReports = experiment.ReplicateWithReports
	// WriteReportsJSON writes run reports as one JSON document.
	WriteReportsJSON = metrics.WriteReportsJSON
	// RunGlueVsAuth executes the Appendix A TTL-trust experiment.
	RunGlueVsAuth = experiment.RunGlueVsAuth
	// PerProbe computes the Appendix F Table 7 for one probe.
	PerProbe = experiment.PerProbe
	// BusiestProbe picks a drill-down subject.
	BusiestProbe = experiment.BusiestProbe
	// SpecByName returns a paper experiment (A–I) by name.
	SpecByName = experiment.SpecByName
	// NewTestbed assembles a simulated ecosystem for custom studies.
	NewTestbed = experiment.NewTestbed
	// RunImplications executes the §8 root-vs-CDN attack comparison.
	RunImplications = experiment.RunImplications
	// Check runs the reproduction self-test against the paper's claims.
	Check = experiment.Check
	// RenderCheck prints a Check result table.
	RenderCheck = experiment.RenderCheck
	// RunNl executes the §4.1 .nl inter-arrival analysis (Figure 4).
	RunNl = passive.RunNl
	// RunNlFromSim derives Figure 4 from an actual simulated run.
	RunNlFromSim = experiment.RunNlFromSim
	// RunRoot executes the §4.2 root DS analysis (Figure 5).
	RunRoot = passive.RunRoot
	// RunRetryTrials measures per-level query counts of a resolver
	// profile with servers up or down (Figure 16).
	RunRetryTrials = retrymodel.Run
	// BINDLike and UnboundLike are the §6.2 software profiles.
	BINDLike    = retrymodel.BINDLike
	UnboundLike = retrymodel.UnboundLike
)

// PaperExperiments are the paper's Table 4 experiments A–I.
var PaperExperiments = experiment.PaperExperiments

// Renderers for paper-style text tables.
var (
	RenderTable1        = experiment.RenderTable1
	RenderTable2        = experiment.RenderTable2
	RenderTable3        = experiment.RenderTable3
	RenderTable4        = experiment.RenderTable4
	RenderTable5        = experiment.RenderTable5
	RenderTable7        = experiment.RenderTable7
	RenderLatency       = experiment.RenderLatency
	RenderImplications  = experiment.RenderImplications
	SeriesCSV           = experiment.SeriesCSV
	LatencyCSV          = experiment.LatencyCSV
	AmplificationCSV    = experiment.AmplificationCSV
	UniqueRnCSV         = experiment.UniqueRnCSV
	ECDFCSV             = experiment.ECDFCSV
	RenderUniqueRn      = experiment.RenderUniqueRn
	RenderAmplification = experiment.RenderAmplification
	RenderNXNS          = experiment.RenderNXNS
	RenderPoison        = experiment.RenderPoison
	RenderReflect       = experiment.RenderReflect
	RenderTransport     = experiment.RenderTransport
)

// Fallback modes of the transport scenario.
const (
	FallbackNone     = experiment.FallbackNone
	FallbackResolver = experiment.FallbackResolver
	FallbackFull     = experiment.FallbackFull
)

// Tracing and telemetry (DESIGN.md §12). Set RunConfig.Trace to record a
// deterministic query-lifecycle trace; the Outcome's Trace data exports
// to JSONL or Chrome trace_event format and reconstructs per-VP query
// spans for failure analysis.
type (
	// TraceConfig sizes the per-cell ring buffers and sets the probe
	// sampling stride.
	TraceConfig = trace.Config
	// TraceData is a run's merged per-cell trace.
	TraceData = trace.Data
	// TraceEvent is one lifecycle event.
	TraceEvent = trace.Event
	// TraceSpan is one reconstructed stub query span.
	TraceSpan = trace.Span
	// TraceBuffer is one cell's event ring (for custom topologies: every
	// engine has a SetTrace method accepting one).
	TraceBuffer = trace.Buffer
	// Progress is the live telemetry tracker of a sharded run.
	Progress = telemetry.Progress
	// TimelineConfig sizes per-bucket simulated-time series collection
	// (RunConfig.Timeline).
	TimelineConfig = timeline.Config
	// Timeline is a run's merged per-bucket series (Outcome.Timeline).
	Timeline = timeline.Timeline
	// TimelineMark is one attack-phase boundary annotation.
	TimelineMark = timeline.Mark
	// TimelineMetric indexes one of the tracked per-bucket series.
	TimelineMetric = timeline.Metric
)

// Timeline series indices (see timeline.Metric).
const (
	TimelineAnswered        = timeline.Answered
	TimelineFailed          = timeline.Failed
	TimelineServFail        = timeline.ServFail
	TimelineStaleServed     = timeline.StaleServed
	TimelineCacheHit        = timeline.CacheHit
	TimelineRetry           = timeline.Retry
	TimelineTCPFallback     = timeline.TCPFallback
	TimelineUpstreamTimeout = timeline.UpstreamTimeout
)

// Tracing and telemetry helpers.
var (
	// NewTraceBuffer creates an event ring on a clock.
	NewTraceBuffer = trace.NewBuffer
	// ReadTraceJSONL parses a trace written by TraceData.WriteJSONL.
	ReadTraceJSONL = trace.ReadJSONL
	// ValidateChromeTrace checks an exported Chrome trace_event document.
	ValidateChromeTrace = trace.ValidateChrome
	// FormatTraceEvent renders one event as a human-readable line.
	FormatTraceEvent = trace.FormatEvent
	// NewProgress creates a live progress tracker (stderr when w is nil).
	NewProgress = telemetry.NewProgress
	// ServeTelemetry starts the expvar + pprof + OpenMetrics HTTP
	// endpoint; it returns (addr, shutdown, error).
	ServeTelemetry = telemetry.Serve
	// WriteOpenMetrics renders a metrics snapshot in OpenMetrics text
	// format.
	WriteOpenMetrics = telemetry.WriteOpenMetrics
)

// MustA builds A record data from an IPv4 literal, panicking on bad input.
func MustA(s string) RData { return dnswire.A{Addr: dnswire.MustAddr(s)} }

// MustAAAA builds AAAA record data from an IPv6 literal, panicking on bad
// input.
func MustAAAA(s string) RData { return dnswire.AAAA{Addr: dnswire.MustAddr(s)} }
