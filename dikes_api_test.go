package dikes_test

import (
	"strings"
	"testing"
	"time"

	dikes "repro"
)

// TestFacadeCustomWorld exercises the public API end to end the way the
// README shows: build a world from the exported engine types and resolve
// through it.
func TestFacadeCustomWorld(t *testing.T) {
	clk := dikes.NewVirtualClock(time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC))
	net := dikes.NewNetwork(clk, 1)

	z, err := dikes.ParseZoneString(`
$ORIGIN example.nl.
$TTL 300
@    IN SOA ns1 hostmaster 1 7200 3600 864000 60
@    IN NS  ns1
ns1  IN A    192.0.2.1
www  IN AAAA 2001:db8::80
`, "")
	if err != nil {
		t.Fatal(err)
	}
	dikes.NewAuthoritative(z).Attach(net, "192.0.2.1")

	r := dikes.NewResolver(clk, dikes.ResolverConfig{
		RootHints: []dikes.ServerHint{{Name: "ns1.example.nl.", Addr: "192.0.2.1"}},
	})
	r.Attach(net, "10.0.0.53")

	var got dikes.ResolveResult
	r.Resolve("www.example.nl.", dikes.TypeAAAA, 0, func(res dikes.ResolveResult) { got = res })
	clk.Run()
	if got.ServFail || len(got.Answers) != 1 {
		t.Fatalf("result = %+v", got)
	}
	if got.RCode != dikes.RCodeNoError {
		t.Errorf("rcode = %v", got.RCode)
	}

	// The attack scheduler works through the facade too.
	dikes.ScheduleAttack(clk, net, dikes.Attack{
		Targets: []dikes.Addr{"192.0.2.1"}, Loss: 1, Start: time.Second,
	})
	clk.RunFor(2 * time.Second)
	var failed dikes.ResolveResult
	r.Resolve("other.example.nl.", dikes.TypeAAAA, 0, func(res dikes.ResolveResult) { failed = res })
	clk.RunFor(time.Minute)
	if !failed.ServFail {
		t.Errorf("expected SERVFAIL under full loss, got %+v", failed)
	}
}

// TestFacadeWireHelpers checks the re-exported codec helpers.
func TestFacadeWireHelpers(t *testing.T) {
	q := dikes.NewQuery(9, "Example.NL", dikes.TypeNS)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	m, err := dikes.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Question1().Name != "example.nl." {
		t.Errorf("name = %q", m.Question1().Name)
	}
	if dikes.CanonicalName("A.B.") != "a.b." {
		t.Error("CanonicalName broken")
	}
}

// TestFacadeExperimentEntryPoints smoke-tests every runner exposed on the
// facade at tiny scale.
func TestFacadeExperimentEntryPoints(t *testing.T) {
	if _, ok := dikes.SpecByName("H"); !ok {
		t.Fatal("SpecByName(H) missing")
	}
	if len(dikes.PaperExperiments) != 9 {
		t.Fatalf("PaperExperiments = %d, want 9 (A-I)", len(dikes.PaperExperiments))
	}
	caching := dikes.RunCaching(dikes.CachingConfig{Probes: 40, Rounds: 3, Seed: 1})
	if caching.Table1.Queries == 0 {
		t.Error("RunCaching produced nothing")
	}
	nl := dikes.RunNl(dikes.NlConfig{Resolvers: 200, Seed: 1})
	if nl.ECDF.Len() == 0 {
		t.Error("RunNl produced nothing")
	}
	root := dikes.RunRoot(dikes.RootConfig{Resolvers: 500, Seed: 1})
	if root.FracSingleObserved == 0 {
		t.Error("RunRoot produced nothing")
	}
	retr := dikes.RunRetryTrials(dikes.BINDLike(), false, 3, 1)
	if retr.Answered != 3 {
		t.Errorf("retry trials answered %d/3", retr.Answered)
	}
	glue := dikes.RunGlueVsAuth(30, 1, dikes.PopulationConfig{})
	if glue.NS.Total == 0 {
		t.Error("RunGlueVsAuth produced nothing")
	}
	if out := dikes.RenderTable5(glue); !strings.Contains(out, "child share") {
		t.Error("RenderTable5 broken")
	}
}
